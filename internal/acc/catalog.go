package acc

import (
	"fmt"
	"sort"
)

// The catalog models the twelve kernels evaluated in the paper (the
// eleven ESP-release accelerators plus the NVDLA; Table 2 / Figure 2).
// Parameters are derived from each kernel's published algorithmic
// structure — arithmetic intensity, pass count, access regularity — not
// from the authors' RTL, which is the substitution documented in
// DESIGN.md. What matters for reproducing the paper is the *diversity*
// of profiles: compute-bound vs. memory-bound, regular vs. irregular,
// single-pass streaming vs. heavy reuse.

const kib = int64(1024)

// Names of the cataloged accelerators.
const (
	Autoencoder = "autoencoder"
	Cholesky    = "cholesky"
	Conv2D      = "conv2d"
	FFT         = "fft"
	GEMM        = "gemm"
	MLP         = "mlp"
	MRIQ        = "mri-q"
	NVDLA       = "nvdla"
	NightVision = "night-vision"
	Sort        = "sort"
	SPMV        = "spmv"
	Viterbi     = "viterbi"
)

var catalog = map[string]*Spec{
	// Denoising autoencoder (SVHN): streamed matrix–vector layers; weights
	// are re-read per batch element, giving moderate reuse.
	Autoencoder: {
		Name: Autoencoder, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 0.8, ReadFraction: 0.8, Reuse: ConstReuse(2),
		InPlace: false, PLMBytes: 16 * kib,
	},
	// Cholesky decomposition: in-place triangular updates that sweep the
	// matrix repeatedly with long row bursts.
	Cholesky: {
		Name: Cholesky, Pattern: Streaming, BurstLines: 32,
		ComputePerByte: 1.0, ReadFraction: 0.6, Reuse: LogReuse(2),
		InPlace: true, PLMBytes: 32 * kib,
	},
	// 2D convolution: streaming image tiles, high arithmetic intensity
	// from filter reuse inside the PLM.
	Conv2D: {
		Name: Conv2D, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 1.6, ReadFraction: 0.85, Reuse: ConstReuse(1),
		InPlace: false, PLMBytes: 32 * kib,
	},
	// 1D FFT: in-place butterfly stages; passes grow with log of the
	// transform size relative to the PLM.
	FFT: {
		Name: FFT, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 0.5, ReadFraction: 0.55, Reuse: LogReuse(1),
		InPlace: true, PLMBytes: 16 * kib,
	},
	// Dense matrix multiply: high reuse (tiles re-read) and compute-heavy.
	GEMM: {
		Name: GEMM, Pattern: Streaming, BurstLines: 32,
		ComputePerByte: 2.0, ReadFraction: 0.9, Reuse: LogReuse(2),
		InPlace: false, PLMBytes: 64 * kib,
	},
	// MLP classifier (SVHN): streamed weight matrices, single pass.
	MLP: {
		Name: MLP, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 0.9, ReadFraction: 0.9, Reuse: ConstReuse(1),
		InPlace: false, PLMBytes: 16 * kib,
	},
	// MRI-Q (Parboil): trigonometric kernel, strongly compute-bound; the
	// memory system is rarely the bottleneck.
	MRIQ: {
		Name: MRIQ, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 4.0, ReadFraction: 0.9, Reuse: ConstReuse(1),
		InPlace: false, PLMBytes: 16 * kib,
	},
	// NVDLA-style CNN engine: long weight/activation bursts, moderate
	// intensity, large local buffers.
	NVDLA: {
		Name: NVDLA, Pattern: Streaming, BurstLines: 64,
		ComputePerByte: 1.2, ReadFraction: 0.85, Reuse: ConstReuse(2),
		InPlace: false, PLMBytes: 128 * kib,
	},
	// Night-vision pipeline (noise filter → histogram → equalization →
	// DWT): four engines storing and reloading intermediates in place.
	NightVision: {
		Name: NightVision, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 0.6, ReadFraction: 0.55, Reuse: ConstReuse(4),
		InPlace: true, PLMBytes: 16 * kib,
	},
	// Merge sort: log-many full passes, balanced read/write, in place.
	Sort: {
		Name: Sort, Pattern: Streaming, BurstLines: 16,
		ComputePerByte: 0.4, ReadFraction: 0.5, Reuse: LogReuse(1),
		InPlace: true, PLMBytes: 16 * kib,
	},
	// Sparse matrix–vector multiply: irregular vector gathers, memory
	// bound, touching a fraction of the vector per row block.
	SPMV: {
		Name: SPMV, Pattern: Irregular, BurstLines: 1,
		ComputePerByte: 0.15, ReadFraction: 0.9, Reuse: ConstReuse(2),
		AccessFraction: 0.6, InPlace: false, PLMBytes: 16 * kib,
	},
	// Viterbi decoder: strided trellis walks with modest compute.
	Viterbi: {
		Name: Viterbi, Pattern: Strided, BurstLines: 1,
		ComputePerByte: 1.0, ReadFraction: 0.75, Reuse: ConstReuse(2),
		StrideLines: 4, InPlace: false, PLMBytes: 16 * kib,
	},
}

// ByName returns the cataloged spec, or an error for unknown names.
func ByName(name string) (*Spec, error) {
	s, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("acc: unknown accelerator %q", name)
	}
	return s, nil
}

// MustByName returns the cataloged spec or panics; for static tables.
func MustByName(name string) *Spec {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all catalog names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ESPNames returns the eleven ESP-release accelerators (the catalog
// without the NVDLA), sorted — the set integrated in SoC4.
func ESPNames() []string {
	out := make([]string, 0, len(catalog)-1)
	for n := range catalog {
		if n != NVDLA {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
