package acc

import (
	"fmt"

	"cohmeleon/internal/sim"
)

// TrafficConfig holds the paper's traffic-generator parameters (§5):
// access pattern, DMA burst length, compute duration, data reuse factor,
// read-to-write ratio, stride length, access fraction, and in-place
// storage. A TrafficConfig compiles into a Spec, so generated traffic
// flows through exactly the same socket datapaths as the cataloged
// accelerators.
type TrafficConfig struct {
	Pattern        Pattern
	BurstLines     int
	ComputePerByte float64 // "compute duration" normalized per byte
	ReusePasses    int     // "data reuse factor"
	ReadFraction   float64 // derived from the read-to-write ratio
	StrideLines    int
	AccessFraction float64
	InPlace        bool
	PLMBytes       int64
}

// Spec compiles the configuration into an accelerator spec with the
// given instance name.
func (c TrafficConfig) Spec(name string) (*Spec, error) {
	s := &Spec{
		Name:           name,
		Pattern:        c.Pattern,
		BurstLines:     c.BurstLines,
		ComputePerByte: c.ComputePerByte,
		ReadFraction:   c.ReadFraction,
		Reuse:          ConstReuse(max(1, c.ReusePasses)),
		StrideLines:    c.StrideLines,
		AccessFraction: c.AccessFraction,
		InPlace:        c.InPlace,
		PLMBytes:       c.PLMBytes,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("trafficgen %s: %w", name, err)
	}
	return s, nil
}

// RandomTrafficConfig draws a configuration that covers the generator's
// parameter space, mirroring how the paper randomizes traffic-generator
// instances across evaluation applications.
func RandomTrafficConfig(rng *sim.RNG) TrafficConfig {
	pattern := Pattern(rng.Intn(3))
	cfg := TrafficConfig{
		Pattern:        pattern,
		BurstLines:     []int{4, 8, 16, 32, 64}[rng.Intn(5)],
		ComputePerByte: []float64{0.1, 0.25, 0.5, 1.0, 2.0, 4.0}[rng.Intn(6)],
		ReusePasses:    1 + rng.Intn(4),
		ReadFraction:   []float64{0.5, 0.65, 0.8, 0.9}[rng.Intn(4)],
		InPlace:        rng.Intn(2) == 0,
		PLMBytes:       []int64{8 * kib, 16 * kib, 32 * kib, 64 * kib}[rng.Intn(4)],
	}
	switch pattern {
	case Strided:
		cfg.BurstLines = 1
		cfg.StrideLines = []int{2, 4, 8, 16}[rng.Intn(4)]
	case Irregular:
		cfg.BurstLines = 1
		cfg.AccessFraction = []float64{0.25, 0.5, 0.75, 1.0}[rng.Intn(4)]
	}
	return cfg
}

// StreamingTrafficConfig draws a random configuration restricted to
// streaming patterns (Figure 9's "SoC0 - Streaming" row).
func StreamingTrafficConfig(rng *sim.RNG) TrafficConfig {
	cfg := RandomTrafficConfig(rng)
	cfg.Pattern = Streaming
	cfg.BurstLines = []int{16, 32, 64}[rng.Intn(3)]
	cfg.StrideLines = 0
	cfg.AccessFraction = 0
	return cfg
}

// IrregularTrafficConfig draws a random configuration restricted to
// irregular patterns (Figure 9's "SoC0 - Irregular" row).
func IrregularTrafficConfig(rng *sim.RNG) TrafficConfig {
	cfg := RandomTrafficConfig(rng)
	cfg.Pattern = Irregular
	cfg.BurstLines = 1
	cfg.StrideLines = 0
	cfg.AccessFraction = []float64{0.25, 0.5, 0.75, 1.0}[rng.Intn(4)]
	return cfg
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
