package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cohmeleon/internal/experiment"
)

// Job manifests make jobs crash-resumable: every admission and every
// state transition persists the job — spec, state, progress, and (when
// done) the full report — as a checksummed blob under
// <cache-dir>/jobs/, written with the same atomic temp+rename
// discipline as run-store entries. A restarted server over the same
// cache directory re-adopts every manifest: settled jobs serve their
// persisted reports byte-identically, unsettled ones re-enter the
// queue and resume from their checkpointed cells.

// manifestVersion tags the manifest blob format.
const manifestVersion = 1

// manifest is the persisted form of a job.
type manifest struct {
	ID      string
	Seq     int
	Spec    JobSpec
	State   string
	Error   string
	Report  string
	Cells   CellProgress
}

// manifestDir names the job-manifest area under a cache directory.
func manifestDir(cacheDir string) string {
	return filepath.Join(cacheDir, "jobs")
}

// manifestPath names one job's manifest file.
func manifestPath(dir, id string) string {
	return filepath.Join(dir, id+".gob")
}

// persistJob writes the job's current state. Best-effort by design:
// like checkpoint saves, a failed manifest write costs durability (the
// job may not survive a restart) but never the in-memory job — the
// failure is counted and warned through the store's accounting.
func (s *Server) persistJob(j *Job) {
	if s.manifests == "" {
		return
	}
	st := j.Status()
	m := manifest{
		ID: st.ID, Seq: j.seq, Spec: st.Spec, State: string(st.State),
		Error: st.Error, Report: j.reportForManifest(), Cells: st.Cells,
	}
	// Ignore the error: WriteManifestBlob already counted and reported it.
	_ = experiment.WriteManifestBlob(s.manifests, manifestPath(s.manifests, st.ID), manifestVersion, &m)
}

// reportForManifest returns the report regardless of state (Status's
// ReportReady gating is for clients; the manifest keeps whatever
// exists).
func (j *Job) reportForManifest() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// loadManifests reads every manifest under dir, in sequence order.
// Corrupt manifests are quarantined (*.corrupt) and skipped — one
// rotted job must not keep the server from starting; unreadable ones
// fail the load, because silently forgetting adoptable jobs is worse
// than refusing to start.
func loadManifests(dir string) ([]manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: reading job manifests: %w", err)
	}
	var out []manifest
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".gob" {
			continue
		}
		var m manifest
		ok, err := experiment.ReadManifestBlob(filepath.Join(dir, e.Name()), manifestVersion, &m)
		if err != nil {
			return nil, fmt.Errorf("server: job manifest %s: %w", e.Name(), err)
		}
		if ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out, nil
}

// jobFromManifest revives a persisted job. Settled states revive
// as-is (their reports serve byte-identically); queued, running, and
// interrupted jobs revive queued — the previous process's promise to
// run them transfers to this one, and Resume replays every cell that
// already checkpointed.
func jobFromManifest(m manifest) (*Job, bool) {
	j := newJob(m.ID, m.Spec)
	j.seq = m.Seq
	switch JobState(m.State) {
	case StateDone, StateFailed, StateCancelled:
		j.state = JobState(m.State)
		j.report = m.Report
		j.errText = m.Error
		j.cells = m.Cells
		j.settled = true
		j.events = append(j.events, Event{Event: "state", State: j.state, Error: m.Error})
		return j, false
	default:
		// Progress counters reset: the re-run reports its own replay
		// traffic, which is the honest number for this process.
		return j, true
	}
}
