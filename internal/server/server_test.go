package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"cohmeleon/internal/experiment"
	"cohmeleon/internal/faultinject"
)

// serverTestSetup isolates the experiment package's process globals
// between tests (the server points the run store at its cache dir).
func serverTestSetup(t *testing.T) {
	t.Helper()
	experiment.ResetRunCache()
	experiment.ResetCheckpointStats()
	t.Cleanup(func() {
		faultinject.Disable()
		experiment.ResetRunCache()
		experiment.ResetCheckpointStats()
		if err := experiment.SetRunCacheDir(""); err != nil {
			t.Error(err)
		}
	})
}

// tinySweepSpec is the job every integration test runs: small enough
// to finish in seconds, big enough to interrupt mid-grid.
func tinySweepSpec() JobSpec {
	return JobSpec{Experiment: "sweep", Profile: "tiny", Scenarios: 3}
}

// tinySweepWant computes, once, the report bytes the equivalent CLI
// run renders (`run -profile tiny -scenarios 3 sweep`, no cache) — the
// byte-identity reference every served report is compared against.
var (
	wantOnce   sync.Once
	wantReport string
	wantErr    error
)

func tinySweepWant(t *testing.T) string {
	t.Helper()
	wantOnce.Do(func() {
		if wantErr = experiment.SetRunCacheDir(""); wantErr != nil {
			return
		}
		opt := experiment.Tiny()
		opt.SweepScenarios = 3
		var res *experiment.SweepResult
		if res, wantErr = experiment.Sweep(opt); wantErr == nil {
			wantReport = res.Render()
		}
	})
	if wantErr != nil {
		t.Fatalf("reference sweep: %v", wantErr)
	}
	return wantReport
}

// testConfig returns a small serving configuration over dir.
func testConfig(dir string) Config {
	return Config{
		CacheDir:   dir,
		QueueCap:   8,
		JobWorkers: 1,
		Retry:      experiment.DefaultRetryPolicy(),
	}
}

// --- HTTP helpers -------------------------------------------------------

func httpDo(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func submitJob(t *testing.T, base, spec string) JobStatus {
	t.Helper()
	code, _, body := httpDo(t, "POST", base+"/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202; body: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("job status: %v", err)
	}
	return st
}

func jobStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	code, _, body := httpDo(t, "GET", base+"/jobs/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d; body: %s", id, code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("job status: %v", err)
	}
	return st
}

func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st := jobStatus(t, base, id)
		if st.State.Terminal() || st.State == StateInterrupted {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func fetchReport(t *testing.T, base, id string) string {
	t.Helper()
	code, _, body := httpDo(t, "GET", base+"/jobs/"+id+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s/report = %d; body: %s", id, code, body)
	}
	return string(body)
}

// --- unit: queue, spec, manifest ---------------------------------------

func TestJobQueueBoundsForceAndClose(t *testing.T) {
	q := newJobQueue(2)
	a, b, c, d := newJob("a", JobSpec{}), newJob("b", JobSpec{}), newJob("c", JobSpec{}), newJob("d", JobSpec{})
	if !q.push(a) || !q.push(b) {
		t.Fatal("pushes under capacity refused")
	}
	if q.push(c) {
		t.Fatal("push beyond capacity admitted")
	}
	if !q.force(c) {
		t.Fatal("force beyond capacity refused")
	}
	if q.depth() != 3 {
		t.Fatalf("depth = %d, want 3", q.depth())
	}
	if j, ok := q.pop(); !ok || j != a {
		t.Fatalf("pop = %v, want job a", j)
	}
	q.close()
	if q.push(d) || q.force(d) {
		t.Fatal("closed queue admitted a job")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("closed queue dispatched a job")
	}
	if q.depth() != 2 {
		t.Fatalf("closed queue dropped queued jobs: depth = %d, want 2", q.depth())
	}
}

func TestJobSpecValidation(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string // error substring; empty = valid
	}{
		{JobSpec{Experiment: "sweep"}, ""},
		{JobSpec{Experiment: "learners", Profile: "tiny"}, ""},
		{JobSpec{Experiment: "sweep", Profile: "full", Seed: 7, Scenarios: 2, TimeoutSec: 60}, ""},
		{JobSpec{}, "not servable"},
		{JobSpec{Experiment: "fig9"}, "not servable"},
		{JobSpec{Experiment: "sweep", Profile: "huge"}, "unknown profile"},
		{JobSpec{Experiment: "sweep", Scenarios: -1}, "scenarios"},
		{JobSpec{Experiment: "learners", Scenarios: 2}, "only applies to the sweep"},
		{JobSpec{Experiment: "sweep", TimeoutSec: -1}, "timeout_sec"},
		{JobSpec{Experiment: "sweep", Learner: "nope"}, "nope"},
		{JobSpec{Experiment: "sweep", Schedule: "nope"}, "nope"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("Validate(%+v) = %v, want ok", c.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestManifestRoundTripAndCorruptQuarantine(t *testing.T) {
	serverTestSetup(t)
	dir := t.TempDir()
	m := manifest{
		ID: "job-000003", Seq: 3, Spec: tinySweepSpec(), State: string(StateDone),
		Report: "the report", Cells: CellProgress{Done: 3, Total: 3, Replayed: 1},
	}
	if err := experiment.WriteManifestBlob(dir, manifestPath(dir, m.ID), manifestVersion, &m); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != m.ID || got[0].Report != m.Report || got[0].Cells != m.Cells {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// A corrupt manifest is quarantined and skipped, not fatal.
	bad := manifestPath(dir, "job-000004")
	if err := os.WriteFile(bad, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = loadManifests(dir)
	if err != nil {
		t.Fatalf("corrupt manifest failed the load: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("manifests = %d, want 1 (corrupt one skipped)", len(got))
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
}

// --- integration: byte-identity, dedup, faults, restart, drain ---------

// TestServeReportByteIdenticalToCLIColdAndWarm is the tentpole
// contract: a served job's report is byte-identical to the equivalent
// CLI run — on a cold cache, and again when a duplicate job replays
// every cell.
func TestServeReportByteIdenticalToCLIColdAndWarm(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	srv, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cold := submitJob(t, ts.URL, `{"experiment":"sweep","profile":"tiny","scenarios":3}`)
	st := waitTerminal(t, ts.URL, cold.ID)
	if st.State != StateDone {
		t.Fatalf("cold job = %s (%s), want done", st.State, st.Error)
	}
	if got := fetchReport(t, ts.URL, cold.ID); got != want {
		t.Fatalf("cold served report differs from CLI bytes:\n--- served ---\n%s--- cli ---\n%s", got, want)
	}
	if st.Cells.Done != 3 || st.Cells.Replayed != 0 {
		t.Fatalf("cold cells = %+v, want 3 computed", st.Cells)
	}

	warm := submitJob(t, ts.URL, `{"experiment":"sweep","profile":"tiny","scenarios":3}`)
	st2 := waitTerminal(t, ts.URL, warm.ID)
	if st2.State != StateDone {
		t.Fatalf("warm job = %s (%s), want done", st2.State, st2.Error)
	}
	if got := fetchReport(t, ts.URL, warm.ID); got != want {
		t.Fatal("warm served report differs from CLI bytes")
	}
	if st2.Cells.Replayed != st2.Cells.Total || st2.Cells.Total != 3 {
		t.Fatalf("warm cells = %+v, want all 3 replayed (cross-job dedup)", st2.Cells)
	}

	// The event stream replays the whole history once settled: queued,
	// running, cells (replayed on the warm job), done.
	code, hdr, body := httpDo(t, "GET", ts.URL+"/jobs/"+warm.ID+"/events", "")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "ndjson") {
		t.Fatalf("events = %d %s", code, hdr.Get("Content-Type"))
	}
	var states []string
	replayedCells := 0
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if e.Event == "state" {
			states = append(states, string(e.State))
		}
		if e.Event == "cell" && e.Replayed {
			replayedCells++
		}
	}
	if want := []string{"queued", "running", "done"}; strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("event states = %v, want %v", states, want)
	}
	if replayedCells != 3 {
		t.Fatalf("replayed cell events = %d, want 3", replayedCells)
	}
}

// TestServeConcurrentDuplicateJobsShareWork pins cross-job dedup: two
// identical jobs racing on two runners produce byte-identical reports,
// and the singleflight memo hands one job's simulations to the other.
func TestServeConcurrentDuplicateJobsShareWork(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	cfg := testConfig(t.TempDir())
	cfg.JobWorkers = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain()

	a, err := srv.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := a.Wait(), b.Wait(); sa != StateDone || sb != StateDone {
		t.Fatalf("states = %s/%s, want done/done", sa, sb)
	}
	ra, _ := a.Report()
	rb, _ := b.Report()
	if ra != want || rb != want {
		t.Fatal("concurrent duplicate jobs rendered different bytes than the CLI run")
	}
	ca, cb := a.Status().Counters, b.Status().Counters
	shared := ca.MemoHits + ca.DiskHits + cb.MemoHits + cb.DiskHits
	replayed := a.Status().Cells.Replayed + b.Status().Cells.Replayed
	if shared == 0 && replayed == 0 {
		t.Fatalf("no dedup observed: counters a=%+v b=%+v", ca, cb)
	}
}

// TestServeReportByteIdenticalUnderInjectedTransientFaults is the
// fault campaign: transient cell faults and a manifest write failure
// must cost retries, never bytes.
func TestServeReportByteIdenticalUnderInjectedTransientFaults(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	srv, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.NewScript(
		faultinject.FailTransient(faultinject.CellAttempt, 1),
		faultinject.FailTransient(faultinject.CellAttempt, 4),
		faultinject.Fail(faultinject.ManifestWrite, 1),
	))
	defer faultinject.Disable()
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st := submitJob(t, ts.URL, `{"experiment":"sweep","profile":"tiny","scenarios":3}`)
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("faulted job = %s (%s), want done", fin.State, fin.Error)
	}
	if got := fetchReport(t, ts.URL, st.ID); got != want {
		t.Fatal("injected faults changed the served report bytes")
	}
	if fin.Counters.CellRetries != 2 {
		t.Fatalf("job cell_retries = %d, want 2", fin.Counters.CellRetries)
	}
	// The retries and the swallowed manifest write both surface in /statsz.
	code, _, body := httpDo(t, "GET", ts.URL+"/statsz", "")
	if code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	var stats statsz
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store.Retry.CellRetries != 2 {
		t.Fatalf("statsz retries = %d, want 2", stats.Store.Retry.CellRetries)
	}
	if stats.Store.RunCache.WriteFailures < 1 {
		t.Fatalf("statsz write failures = %d, want ≥ 1 (manifest fault)", stats.Store.RunCache.WriteFailures)
	}
}

// TestServeDrainMidJobRestartResumesByteIdentical is the crash-resume
// pin: drain a server mid-job, restart over the same cache directory,
// and the re-adopted job must finish with the CLI's exact bytes while
// replaying the cells the first process checkpointed.
func TestServeDrainMidJobRestartResumesByteIdentical(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.CellWorkers = 1 // sequential cells: the drain lands mid-grid
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	j, err := srv1.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for j.Status().Cells.Done < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Drain()
	state := j.State()
	if state != StateInterrupted && state != StateDone {
		t.Fatalf("drained job = %s, want interrupted (or done if it outran the drain)", state)
	}

	// "Restart": fresh process state over the same cache directory.
	experiment.ResetRunCache()
	experiment.ResetCheckpointStats()
	srv2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := srv2.Job(j.ID())
	if !ok {
		t.Fatalf("job %s not re-adopted", j.ID())
	}
	srv2.Start()
	defer srv2.Drain()
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	fin := waitTerminal(t, ts.URL, j2.ID())
	if fin.State != StateDone {
		t.Fatalf("re-adopted job = %s (%s), want done", fin.State, fin.Error)
	}
	if got := fetchReport(t, ts.URL, j2.ID()); got != want {
		t.Fatal("re-adopted report differs from CLI bytes")
	}
	if state == StateInterrupted && fin.Cells.Replayed < 1 {
		t.Fatalf("re-adopted job replayed %d cells, want ≥ 1 (checkpoints survived)", fin.Cells.Replayed)
	}
	// Replayed-cell accounting surfaces in /statsz.
	var stats statsz
	_, _, body := httpDo(t, "GET", ts.URL+"/statsz", "")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if state == StateInterrupted && stats.Store.Checkpoint.Replayed < 1 {
		t.Fatalf("statsz replayed = %d, want ≥ 1", stats.Store.Checkpoint.Replayed)
	}
}

// TestServeAdoptsRunningManifestAfterHardCrash covers the no-drain
// crash: a manifest frozen in "running" (the process died without
// persisting a terminal state) re-admits, runs, and serves the CLI's
// bytes; the ID sequence continues past the adopted job.
func TestServeAdoptsRunningManifestAfterHardCrash(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	dir := t.TempDir()
	jobsDir := manifestDir(dir)
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := manifest{ID: "job-000007", Seq: 7, Spec: tinySweepSpec(), State: string(StateRunning)}
	if err := experiment.WriteManifestBlob(jobsDir, manifestPath(jobsDir, m.ID), manifestVersion, &m); err != nil {
		t.Fatal(err)
	}
	srv, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	j, ok := srv.Job("job-000007")
	if !ok {
		t.Fatal("crashed job not adopted")
	}
	if j.State() != StateQueued {
		t.Fatalf("adopted job = %s, want queued", j.State())
	}
	srv.Start()
	defer srv.Drain()
	if st := j.Wait(); st != StateDone {
		t.Fatalf("adopted job = %s, want done", st)
	}
	if got, _ := j.Report(); got != want {
		t.Fatal("adopted job report differs from CLI bytes")
	}
	next, err := srv.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() != "job-000008" {
		t.Fatalf("next ID = %s, want job-000008 (sequence continues)", next.ID())
	}
}

// TestServeBackpressureAndDrainRefusal pins admission control: a full
// queue and a draining server both refuse with 429 + Retry-After,
// readiness flips during drain, and queued jobs survive the drain to
// run after a restart.
func TestServeBackpressureAndDrainRefusal(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.QueueCap = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: the queue fills deterministically.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"experiment":"sweep","profile":"tiny","scenarios":3}`
	submitJob(t, ts.URL, spec)
	submitJob(t, ts.URL, spec)
	code, hdr, body := httpDo(t, "POST", ts.URL+"/jobs", spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429; body: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body %q does not name the queue", body)
	}
	if code, _, _ := httpDo(t, "GET", ts.URL+"/readyz", ""); code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}
	var stats statsz
	_, _, body = httpDo(t, "GET", ts.URL+"/statsz", "")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.QueueDepth != 2 || stats.Draining {
		t.Fatalf("statsz = %+v, want 2 queued, not draining", stats)
	}

	srv.Drain()
	code, hdr, body = httpDo(t, "POST", ts.URL+"/jobs", spec)
	if code != http.StatusTooManyRequests || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining POST = %d %q, want 429 draining", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 429 without Retry-After")
	}
	if code, _, _ := httpDo(t, "GET", ts.URL+"/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
	if code, _, _ := httpDo(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (alive, just not admitting)", code)
	}

	// The two admitted jobs persisted as queued; a restart runs them.
	experiment.ResetRunCache()
	srv2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	jobs := srv2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("re-adopted %d jobs, want 2", len(jobs))
	}
	srv2.Start()
	defer srv2.Drain()
	for _, j := range jobs {
		if st := j.Wait(); st != StateDone {
			t.Fatalf("re-adopted job %s = %s, want done", j.ID(), st)
		}
		if got, _ := j.Report(); got != want {
			t.Fatalf("re-adopted job %s report differs from CLI bytes", j.ID())
		}
	}
}

// TestServeCancelQueuedAndRunning covers DELETE /jobs/{id} both before
// and after a runner picks the job up.
func TestServeCancelQueuedAndRunning(t *testing.T) {
	serverTestSetup(t)
	srv, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Queued cancel: the server is not started, so the job cannot run.
	queued, err := srv.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	code, _, body := httpDo(t, "DELETE", ts.URL+"/jobs/"+queued.ID(), "")
	if code != http.StatusAccepted {
		t.Fatalf("DELETE queued = %d; body: %s", code, body)
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled", st)
	}

	// Running cancel: start the pool (which skips the cancelled job),
	// wait for the next job to be running, then cancel it.
	srv.Start()
	defer srv.Drain()
	spec := tinySweepSpec()
	spec.Seed = 9 // fresh cells, so the job cannot instantly replay to done
	running, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for running.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _, _ := httpDo(t, "DELETE", ts.URL+"/jobs/"+running.ID(), ""); code != http.StatusAccepted {
		t.Fatalf("DELETE running = %d", code)
	}
	if st := running.Wait(); st != StateCancelled {
		t.Fatalf("running job after cancel = %s, want cancelled", st)
	}
	if code, _, _ := httpDo(t, "DELETE", ts.URL+"/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatal("DELETE of unknown job not 404")
	}
}

// TestServeJobDeadlineFailsJob pins the per-job timeout: a deadline
// too short to finish classifies as failed, naming the deadline.
func TestServeJobDeadlineFailsJob(t *testing.T) {
	serverTestSetup(t)
	cfg := testConfig(t.TempDir())
	cfg.JobTimeout = time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain()
	j, err := srv.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StateFailed {
		t.Fatalf("timed-out job = %s, want failed", st)
	}
	if st := j.Status(); !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timeout error %q does not name the deadline", st.Error)
	}
}

// TestServeRejectsBadRequests covers the 400 surface.
func TestServeRejectsBadRequests(t *testing.T) {
	serverTestSetup(t)
	srv, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{`,
		`{"experiment":"fig9"}`,
		`{"experiment":"sweep","profile":"huge"}`,
		`{"experiment":"sweep","bogus":1}`,
	} {
		if code, _, resp := httpDo(t, "POST", ts.URL+"/jobs", body); code != http.StatusBadRequest {
			t.Errorf("POST %q = %d (%s), want 400", body, code, resp)
		}
	}
	if code, _, _ := httpDo(t, "GET", ts.URL+"/jobs/absent", ""); code != http.StatusNotFound {
		t.Error("GET of unknown job not 404")
	}
	if code, _, _ := httpDo(t, "GET", ts.URL+"/jobs/absent/report", ""); code != http.StatusNotFound {
		t.Error("report of unknown job not 404")
	}
}

// TestServeInjectedAdmissionFaultRefusesCleanly: an armed ServeAdmit
// failpoint refuses the submission without registering a job or
// leaving a manifest for a restart to adopt.
func TestServeInjectedAdmissionFaultRefusesCleanly(t *testing.T) {
	serverTestSetup(t)
	dir := t.TempDir()
	srv, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.NewScript(faultinject.Fail(faultinject.ServeAdmit, 1)))
	defer faultinject.Disable()
	if _, err := srv.Submit(tinySweepSpec()); err == nil {
		t.Fatal("injected admission fault did not refuse the submission")
	}
	if jobs := srv.Jobs(); len(jobs) != 0 {
		t.Fatalf("refused submission registered %d jobs", len(jobs))
	}
	entries, err := os.ReadDir(manifestDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("refused submission left %d manifests", len(entries))
	}
	// The very next submission (fault spent) is admitted normally.
	if _, err := srv.Submit(tinySweepSpec()); err != nil {
		t.Fatalf("post-fault submission refused: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	dir := "d"
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{QueueCap: 1, JobWorkers: 1}, "cache directory"},
		{Config{CacheDir: dir, QueueCap: 0, JobWorkers: 1}, "queue capacity"},
		{Config{CacheDir: dir, QueueCap: 1, JobWorkers: 0}, "job workers"},
		{Config{CacheDir: dir, QueueCap: 1, JobWorkers: 1, CellBudget: -1}, "cell budget"},
		{Config{CacheDir: dir, QueueCap: 1, JobWorkers: 1, CellWorkers: -1}, "cell workers"},
		{Config{CacheDir: dir, QueueCap: 1, JobWorkers: 1, JobTimeout: -time.Second}, "job timeout"},
		{Config{CacheDir: dir, QueueCap: 1, JobWorkers: 1, Retry: experiment.RetryPolicy{MaxAttempts: -1}}, "retry"},
	}
	for _, c := range cases {
		err := c.cfg.validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("validate(%+v) = %v, want substring %q", c.cfg, err, c.want)
		}
	}
}

// TestServeReportNotReadyConflict: a queued job's report is a 409 with
// Retry-After; a cancelled job's is a 409 without one.
func TestServeReportNotReadyConflict(t *testing.T) {
	serverTestSetup(t)
	srv, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	j, err := srv.Submit(tinySweepSpec()) // never started
	if err != nil {
		t.Fatal(err)
	}
	code, hdr, _ := httpDo(t, "GET", ts.URL+"/jobs/"+j.ID()+"/report", "")
	if code != http.StatusConflict || hdr.Get("Retry-After") == "" {
		t.Fatalf("queued report = %d (Retry-After %q), want 409 with Retry-After", code, hdr.Get("Retry-After"))
	}
	srv.Cancel(j.ID())
	code, hdr, _ = httpDo(t, "GET", ts.URL+"/jobs/"+j.ID()+"/report", "")
	if code != http.StatusConflict || hdr.Get("Retry-After") != "" {
		t.Fatalf("cancelled report = %d (Retry-After %q), want terminal 409 without Retry-After", code, hdr.Get("Retry-After"))
	}
}

// TestServeSharedInstancesShareOneGrid: two serve instances with
// Config.Shared over one cache dir are the serve-mode half of
// distributed sweeps — each runs the same job and both reports must be
// the CLI's bytes, with the grid's cells computed once between the two
// processes (lease dedup across instances, not just in-process
// singleflight).
func TestServeSharedInstancesShareOneGrid(t *testing.T) {
	serverTestSetup(t)
	want := tinySweepWant(t)
	dir := t.TempDir()
	experiment.ResetCheckpointStats()
	cfgA, cfgB := testConfig(dir), testConfig(dir)
	cfgA.Shared, cfgB.Shared = true, true
	srvA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	srvA.Start()
	defer srvA.Drain()
	srvB.Start()
	defer srvB.Drain()

	a, err := srvA.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srvB.Submit(tinySweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := a.Wait(), b.Wait(); sa != StateDone || sb != StateDone {
		t.Fatalf("states = %s/%s, want done/done", sa, sb)
	}
	ra, _ := a.Report()
	rb, _ := b.Report()
	if ra != want || rb != want {
		t.Fatal("shared serve instances rendered different bytes than the CLI run")
	}
	// Both instances run in this process, so the process-wide save
	// counter covers them jointly: the grid's cells were computed (and
	// saved) exactly once across the two.
	if st := experiment.GetCheckpointStats(); st.Saved != 3 {
		t.Fatalf("cells saved across shared instances = %d, want 3", st.Saved)
	}
}
