package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cohmeleon/internal/experiment"
)

// HTTP surface:
//
//	POST   /jobs              submit a JobSpec        → 202 JobStatus
//	GET    /jobs              list jobs               → 200 [JobStatus]
//	GET    /jobs/{id}         job status              → 200 JobStatus
//	GET    /jobs/{id}/report  final report bytes      → 200 text/plain
//	GET    /jobs/{id}/events  NDJSON progress stream  → 200 application/x-ndjson
//	DELETE /jobs/{id}         cooperative cancel      → 202 JobStatus
//	GET    /healthz           liveness                → 200
//	GET    /readyz            admission readiness     → 200 | 503 while draining
//	GET    /statsz            robustness counters     → 200 JSON
//
// Overload and drain refuse admission with 429 + Retry-After; every
// error body is {"error": "..."} JSON.

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleSubmit admits a job or signals backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad job spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleList returns every job in admission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves {id}, writing the 404 itself when absent.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q", id))
	}
	return j, ok
}

// handleStatus reports one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleCancel asks a job to stop and reports its (possibly already
// settled) state; idempotent.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q", id))
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleReport serves the final report bytes — exactly the bytes the
// equivalent CLI run renders — once the job is done.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if report, ok := j.Report(); ok {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, report)
		return
	}
	if !st.State.Terminal() {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, http.StatusConflict,
		fmt.Errorf("server: job %s is %s; no report to serve", st.ID, st.State))
}

// handleEvents streams the job's progress as NDJSON, one event per
// line, flushing each, until the job settles or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	// The cond-based wait can't select on the context, so a watcher
	// nudges it awake when the client disconnects.
	go func() {
		<-ctx.Done()
		j.wake()
	}()
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.nextEvent(i, func() bool { return ctx.Err() != nil })
		if !ok {
			return
		}
		if enc.Encode(e) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleReady is the admission probe: draining means not ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// statsz is the robustness-counter snapshot.
type statsz struct {
	Draining      bool                     `json:"draining"`
	QueueDepth    int                      `json:"queue_depth"`
	CellsInFlight int                      `json:"cells_in_flight"`
	Jobs          map[string]int           `json:"jobs"`
	Store         experiment.StatsSnapshot `json:"store"`
}

// handleStats snapshots the server and store counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := statsz{
		Draining:      s.Draining(),
		QueueDepth:    s.QueueDepth(),
		CellsInFlight: s.CellsInFlight(),
		Jobs:          map[string]int{},
		Store:         experiment.Snapshot(),
	}
	for _, j := range s.Jobs() {
		out.Jobs[string(j.State())]++
	}
	writeJSON(w, http.StatusOK, out)
}
