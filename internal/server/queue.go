package server

import "sync"

// jobQueue is the bounded admission queue between the HTTP front door
// and the job runners. It is a slice under a mutex rather than a
// channel so adopted jobs can be re-admitted past the capacity bound
// (a restart must never drop jobs the previous process promised), and
// so a queued job can be removed when its client cancels it.
type jobQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     []*Job
	capacity int
	closed   bool
}

// newJobQueue returns an open queue admitting up to capacity jobs.
func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job, reporting false when the queue is full or closed —
// the backpressure signal the handler turns into a 429.
func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.jobs) >= q.capacity {
		return false
	}
	q.jobs = append(q.jobs, j)
	q.cond.Signal()
	return true
}

// force admits a job past the capacity bound (re-adoption after a
// restart); only a closed queue refuses.
func (q *jobQueue) force(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.jobs = append(q.jobs, j)
	q.cond.Signal()
	return true
}

// pop blocks for the next job, returning false once the queue is
// closed. Jobs still queued at close stay in the slice — their
// manifests persist them as queued for the next process; this one must
// not start them.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.jobs) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

// depth reports the jobs currently waiting.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// close stops admission and dispatch and wakes blocked runners.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
