package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"cohmeleon/internal/experiment"
	"cohmeleon/internal/faultinject"
)

// Config sizes the server's admission control and worker pools.
type Config struct {
	// CacheDir is the run-store directory jobs share; required. The
	// content-keyed store is the cross-job dedup, the checkpoints are
	// the crash-resume, and the job manifests live under it.
	CacheDir string
	// QueueCap bounds the jobs waiting for a runner; a full queue
	// refuses admission (429). Must be ≥ 1.
	QueueCap int
	// JobWorkers is the number of jobs running concurrently. Must be ≥ 1.
	JobWorkers int
	// CellBudget bounds the grid cells in flight across ALL jobs — the
	// global backpressure that keeps N concurrent jobs from running
	// N × workers cells at once. 0 means GOMAXPROCS.
	CellBudget int
	// CellWorkers is each job's fan-out width (Options.Workers);
	// 0 means GOMAXPROCS. The effective parallelism is still capped by
	// CellBudget.
	CellWorkers int
	// Retry is the transient-failure policy applied at every cell
	// boundary. The zero value disables retry; DefaultRetryPolicy is
	// the serving default.
	Retry experiment.RetryPolicy
	// JobTimeout is the default per-job deadline (0 = none); a spec's
	// timeout_sec overrides it per job.
	JobTimeout time.Duration
	// Shared makes every job's grid cells shard across other -shared
	// cohmeleon processes (serve instances or batch runs) on the same
	// cache directory, deduped through lease files instead of only this
	// process's in-memory singleflight. The worker id derives from
	// host+pid.
	Shared bool
}

// validate rejects un-servable configurations with the valid ranges.
func (c Config) validate() error {
	switch {
	case c.CacheDir == "":
		return fmt.Errorf("server: cache directory required (jobs dedup, checkpoint, and resume through it)")
	case c.QueueCap < 1:
		return fmt.Errorf("server: queue capacity %d invalid: need ≥ 1", c.QueueCap)
	case c.JobWorkers < 1:
		return fmt.Errorf("server: job workers %d invalid: need ≥ 1", c.JobWorkers)
	case c.CellBudget < 0:
		return fmt.Errorf("server: cell budget %d invalid: need ≥ 0 (0 = GOMAXPROCS)", c.CellBudget)
	case c.CellWorkers < 0:
		return fmt.Errorf("server: cell workers %d invalid: need ≥ 0 (0 = GOMAXPROCS)", c.CellWorkers)
	case c.JobTimeout < 0:
		return fmt.Errorf("server: job timeout %v invalid: need ≥ 0 (0 = none)", c.JobTimeout)
	}
	if c.Retry.MaxAttempts != 0 {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Admission-refusal sentinels; the HTTP layer maps both to 429.
var (
	// ErrDraining: the server is shutting down and admits nothing.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrQueueFull: the job queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
)

// Server owns the job lifecycle: admission, the runner pool, the
// cross-job cell gate, manifests, and drain.
type Server struct {
	cfg       Config
	gate      experiment.Gate
	queue     *jobQueue
	manifests string

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // admission order, for listing
	seq      int
	draining bool

	runners  sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc
}

// New builds a server over cfg.CacheDir, pointing the experiment run
// store at it and re-adopting every job manifest a previous process
// left behind. Runners do not start until Start.
func New(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := experiment.SetRunCacheDir(cfg.CacheDir); err != nil {
		return nil, err
	}
	budget := cfg.CellBudget
	if budget == 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	dir := manifestDir(cfg.CacheDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: job manifest dir: %w", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		gate:      experiment.NewGate(budget),
		queue:     newJobQueue(cfg.QueueCap),
		manifests: dir,
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		baseStop:  stop,
	}
	if err := s.adopt(); err != nil {
		stop()
		return nil, err
	}
	return s, nil
}

// adopt revives persisted jobs: settled ones serve their reports,
// unsettled ones re-enter the queue (past its capacity — admission was
// already granted once) and will resume from their checkpoints.
func (s *Server) adopt() error {
	manifests, err := loadManifests(s.manifests)
	if err != nil {
		return err
	}
	for _, m := range manifests {
		j, requeue := jobFromManifest(m)
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		if j.seq > s.seq {
			s.seq = j.seq
		}
		if requeue {
			s.queue.force(j)
			s.persistJob(j) // running/interrupted manifests re-persist as queued
		}
	}
	return nil
}

// Start launches the runner pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.runners.Add(1)
		go s.runner()
	}
}

// Submit validates and admits a job. ErrDraining and ErrQueueFull are
// the refusal signals (HTTP 429); validation failures are client
// errors (HTTP 400).
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := faultinject.Check(faultinject.ServeAdmit); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), spec)
	j.seq = s.seq
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	// Persist before the job becomes poppable: a runner's later
	// running/done manifests must never be overwritten by the admission
	// write landing late.
	s.persistJob(j)
	if !s.queue.push(j) {
		s.forget(j)
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return nil, ErrDraining
		}
		return nil, ErrQueueFull
	}
	return j, nil
}

// forget withdraws a job that was never admitted: a refused submission
// must leave no manifest for a restart to adopt.
func (s *Server) forget(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if s.manifests != "" {
		os.Remove(manifestPath(s.manifests, j.id))
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in admission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel asks a job to stop: queued jobs settle cancelled at once,
// running jobs unwind cooperatively (in-flight cells finish and
// checkpoint). Reports whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	if j.requestCancel() && j.State() == StateCancelled {
		// Settled straight from the queue; running jobs persist when
		// their runner unwinds.
		s.persistJob(j)
	}
	return j, true
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth reports the jobs waiting for a runner.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// CellsInFlight reports the grid cells currently executing.
func (s *Server) CellsInFlight() int { return s.gate.InFlight() }

// runner is one job-execution loop.
func (s *Server) runner() {
	defer s.runners.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job through the experiment machinery and
// classifies the outcome.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutSec > 0 {
		timeout = time.Duration(j.spec.TimeoutSec) * time.Second
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if !j.start(cancel) {
		return // cancelled while queued
	}
	s.persistJob(j)

	opt, err := j.spec.options()
	if err == nil {
		opt.Workers = s.cfg.CellWorkers
		opt.Ctx = experiment.WithJobCounters(ctx, &j.counters)
		if s.cfg.Retry.MaxAttempts != 0 {
			retry := s.cfg.Retry
			opt.Retry = &retry
		}
		opt.Gate = s.gate
		opt.CellDone = j.noteCell
		opt.Shared = s.cfg.Shared
		var entry experiment.Entry
		entry, err = experiment.Lookup(j.spec.Experiment)
		if err == nil {
			var rep experiment.Report
			rep, err = entry.Run(opt)
			if err == nil {
				// The contract: these bytes are exactly what the CLI's
				// report section renders for the same flags.
				j.finish(StateDone, rep.Render(), "")
				s.persistJob(j)
				return
			}
		}
	}
	switch {
	case j.wasCancelled():
		j.finish(StateCancelled, "", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, "", fmt.Sprintf("job deadline exceeded: %v", err))
	case errors.Is(err, context.Canceled):
		// Drained or shut down mid-flight: completed cells are
		// checkpointed; a restart resumes from them.
		j.finish(StateInterrupted, "", err.Error())
	default:
		j.finish(StateFailed, "", err.Error())
	}
	s.persistJob(j)
}

// Drain gracefully winds the server down: admission stops (new POSTs
// see 429), queued jobs stay queued — persisted for the next process —
// running jobs are cancelled cooperatively so their in-flight cells
// finish and checkpoint, and every manifest is re-persisted. Blocks
// until the runner pool exits; idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.runners.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()

	s.queue.close()
	for _, j := range s.Jobs() {
		j.interrupt()
	}
	s.runners.Wait()
	// Settle still-queued jobs so event streams end; their manifests
	// keep them queued for re-adoption.
	for _, j := range s.Jobs() {
		j.settle()
		s.persistJob(j)
	}
	s.baseStop()
}
