// Package server turns the batch experiment runner into a resilient
// sweep-as-a-service: an HTTP job server that accepts sweep/learners
// job specs, fans their grid cells across a bounded worker pool through
// the same forEach/checkpoint machinery the CLI uses, streams per-cell
// progress, and serves final reports that are byte-identical to the
// equivalent CLI run. Robustness is layered on the experiment package's
// existing guarantees: per-job deadlines and cooperative cancel ride on
// Options.Ctx, transient cell failures retry with capped backoff,
// admission control bounds both the job queue and the cells in flight,
// and a graceful drain checkpoints in-flight cells and persists job
// manifests so a restart over the same cache directory re-adopts and
// resumes jobs byte-identically.
package server

import (
	"fmt"
	"strings"
	"sync"

	"cohmeleon/internal/experiment"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	// StateQueued: admitted, waiting for a job slot.
	StateQueued JobState = "queued"
	// StateRunning: cells are executing.
	StateRunning JobState = "running"
	// StateDone: completed; the report is ready and immutable.
	StateDone JobState = "done"
	// StateFailed: a deterministic cell error or the job deadline ended
	// it; rerunning the same spec would fail the same way (deadline
	// aside), so failed is terminal.
	StateFailed JobState = "failed"
	// StateCancelled: the client cancelled it (DELETE /jobs/{id}).
	StateCancelled JobState = "cancelled"
	// StateInterrupted: a drain stopped it mid-flight. Completed cells
	// are checkpointed; a restart over the same cache directory
	// re-admits the job and replays them.
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether the state can never progress again, in this
// process or any other. Interrupted is deliberately not terminal: it
// resumes after a restart.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// servableExperiments are the experiments a job may name: the
// checkpointed grids with flat cell loops (the admission gate must not
// span nested fan-outs — see experiment.Gate).
var servableExperiments = map[string]bool{"sweep": true, "learners": true}

// servableIDs lists the servable experiments for error messages.
func servableIDs() string {
	var out []string
	for _, id := range experiment.IDs() {
		if servableExperiments[id] {
			out = append(out, id)
		}
	}
	return strings.Join(out, ", ")
}

// JobSpec is the client-submitted description of one experiment run.
// It mirrors the CLI's run flags: a job with spec fields X is the same
// computation as `cohmeleon run` with the corresponding flags, and its
// report is byte-identical to that run's.
type JobSpec struct {
	// Experiment is the grid to run: "sweep" or "learners".
	Experiment string `json:"experiment"`
	// Profile scales the run: "quick" (default), "full", or "tiny".
	Profile string `json:"profile,omitempty"`
	// Seed overrides the experiment seed (0 keeps the profile default).
	Seed uint64 `json:"seed,omitempty"`
	// Scenarios overrides the sweep's scenario count (sweep only).
	Scenarios int `json:"scenarios,omitempty"`
	// Learner and Schedule select the agent's learner stack.
	Learner  string `json:"learner,omitempty"`
	Schedule string `json:"schedule,omitempty"`
	// Protocol selects the coherence-protocol stack by registry name
	// (empty = the default "mesi").
	Protocol string `json:"protocol,omitempty"`
	// FineGrain widens the agent's action space with per-region
	// (hot, cold) mode splits.
	FineGrain bool `json:"fine_grain,omitempty"`
	// Fidelity selects the cell evaluation path: "full" (default, also
	// the empty string; cycle-accurate), "screening" (calibrated
	// analytical estimates with error bounds), or "auto" (screen, then
	// re-simulate only the cells too close to call).
	Fidelity string `json:"fidelity,omitempty"`
	// TimeoutSec caps the job's wall-clock seconds (0 = the server's
	// default deadline, if any).
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// options maps the spec onto experiment options, the exact way the CLI
// maps its flags; Resume is always on — serve jobs replay any cell an
// identical earlier job checkpointed, which is both the cross-job
// dedup and what makes post-drain re-adoption resume instead of
// restart.
func (s JobSpec) options() (experiment.Options, error) {
	var opt experiment.Options
	switch s.Profile {
	case "", "quick":
		opt = experiment.Quick()
	case "full":
		opt = experiment.Default()
	case "tiny":
		opt = experiment.Tiny()
	default:
		return opt, fmt.Errorf("server: unknown profile %q (valid: quick, full, tiny)", s.Profile)
	}
	if s.Seed != 0 {
		opt.Seed = s.Seed
	}
	if s.Scenarios > 0 {
		opt.SweepScenarios = s.Scenarios
	}
	opt.Learner = s.Learner
	opt.Schedule = s.Schedule
	opt.Protocol = s.Protocol
	opt.FineGrain = s.FineGrain
	opt.Fidelity = s.Fidelity
	opt.Resume = true
	return opt, nil
}

// Validate rejects malformed specs at admission, before they occupy a
// queue slot.
func (s JobSpec) Validate() error {
	if !servableExperiments[s.Experiment] {
		return fmt.Errorf("server: experiment %q not servable (valid: %s)", s.Experiment, servableIDs())
	}
	if s.Scenarios < 0 {
		return fmt.Errorf("server: scenarios %d must be ≥ 0 (0 = profile default)", s.Scenarios)
	}
	if s.Scenarios > 0 && s.Experiment != "sweep" {
		return fmt.Errorf("server: scenarios only applies to the sweep experiment")
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("server: timeout_sec %d must be ≥ 0 (0 = server default)", s.TimeoutSec)
	}
	opt, err := s.options()
	if err != nil {
		return err
	}
	return opt.Validate()
}

// Event is one NDJSON progress line on a job's event stream.
type Event struct {
	// Event is "state" (lifecycle transition) or "cell" (one grid cell
	// completed).
	Event string   `json:"event"`
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
	// Cell fields (event == "cell"): the completed cell's index, the
	// running completion count, the grid size, and whether the cell was
	// replayed from a checkpoint rather than computed.
	Cell     int  `json:"cell,omitempty"`
	Done     int  `json:"done,omitempty"`
	Total    int  `json:"total,omitempty"`
	Replayed bool `json:"replayed,omitempty"`
}

// CellProgress summarizes a job's grid progress.
type CellProgress struct {
	Done     int `json:"done"`
	Replayed int `json:"replayed"`
	Total    int `json:"total"`
}

// JobStatus is the JSON shape of GET /jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Cells CellProgress `json:"cells"`
	// Counters is the job's share of run-store and retry traffic —
	// memo/disk hits are cells and app runs this job got for free from
	// other jobs (or its own earlier attempts).
	Counters experiment.JobCounterView `json:"counters"`
	// ReportReady reports whether GET /jobs/{id}/report will serve.
	ReportReady bool `json:"report_ready"`
}

// Job is one admitted experiment run.
type Job struct {
	id       string
	seq      int // admission order, stable across restarts
	spec     JobSpec
	counters experiment.JobCounters

	mu       sync.Mutex
	cond     *sync.Cond // signals new events and settlement
	state    JobState
	errText  string
	report   string
	cells    CellProgress
	events   []Event
	settled  bool        // no further events in this process
	cancelled bool       // client cancel, vs. drain interrupt
	cancel   func()      // cancels the running job's context
}

// newJob returns a queued job.
func newJob(id string, spec JobSpec) *Job {
	j := &Job{id: id, spec: spec, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	j.events = append(j.events, Event{Event: "state", State: StateQueued})
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's submitted spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errText,
		Cells:       j.cells,
		Counters:    j.counters.View(),
		ReportReady: j.state == StateDone,
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Report returns the rendered report, valid once the job is done.
func (j *Job) Report() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.state == StateDone
}

// Wait blocks until the job settles (terminal, or interrupted by a
// drain) and returns its state. Test helper.
func (j *Job) Wait() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.settled {
		j.cond.Wait()
	}
	return j.state
}

// start transitions queued → running, recording the cancel hook.
// Returns false when the job already settled (cancelled while queued).
func (j *Job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.settled || j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.appendEventLocked(Event{Event: "state", State: StateRunning})
	return true
}

// finish settles the job in a post-run state.
func (j *Job) finish(state JobState, report, errText string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.settled {
		return
	}
	j.state = state
	j.report = report
	j.errText = errText
	j.cancel = nil
	j.settled = true
	j.appendEventLocked(Event{Event: "state", State: state, Error: errText})
	j.cond.Broadcast()
}

// settle ends the event stream without changing state — used for jobs
// still queued when the server drains: their manifests stay queued (a
// restart re-admits them) but in-process watchers must not hang.
func (j *Job) settle() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.settled {
		return
	}
	j.settled = true
	j.cond.Broadcast()
}

// requestCancel implements DELETE /jobs/{id}. A queued job settles
// cancelled immediately (the runner skips settled jobs); a running job
// gets its context cancelled and settles when the experiment unwinds;
// a settled job is left alone. Reports whether anything changed.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.settled {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.state = StateCancelled
		j.settled = true
		j.appendEventLocked(Event{Event: "state", State: StateCancelled})
		j.cond.Broadcast()
		j.mu.Unlock()
		return true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// wasCancelled reports whether the client asked for cancellation.
func (j *Job) wasCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// interrupt cancels a running job's context without marking it
// client-cancelled — the drain path, classified as interrupted.
func (j *Job) interrupt() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// noteCell records one completed grid cell; wired to Options.CellDone,
// so it may run from concurrent workers.
func (j *Job) noteCell(e experiment.CellEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells.Done++
	j.cells.Total = e.Total
	if e.Replayed {
		j.cells.Replayed++
	}
	j.appendEventLocked(Event{
		Event: "cell", Cell: e.Index, Done: j.cells.Done,
		Total: e.Total, Replayed: e.Replayed,
	})
}

// appendEventLocked records an event and wakes stream readers.
func (j *Job) appendEventLocked(e Event) {
	j.events = append(j.events, e)
	j.cond.Broadcast()
}

// wake nudges event-stream readers so they can notice a dead client.
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// nextEvent blocks until event i exists (returning it and true) or the
// job settles with fewer events / giveUp returns true (returning false).
func (j *Job) nextEvent(i int, giveUp func() bool) (Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if i < len(j.events) {
			return j.events[i], true
		}
		if j.settled || giveUp() {
			return Event{}, false
		}
		j.cond.Wait()
	}
}
