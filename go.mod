module cohmeleon

go 1.24
