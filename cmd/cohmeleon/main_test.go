package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cohmeleon/internal/experiment"
)

// errFrom runs the CLI entry point and returns its error text.
func errFrom(t *testing.T, args ...string) string {
	t.Helper()
	err := run(args)
	if err == nil {
		t.Fatalf("run(%v) succeeded, want error", args)
	}
	return err.Error()
}

func TestRunRejectsUnknownExperimentListingValidIDs(t *testing.T) {
	msg := errFrom(t, "run", "bogus")
	for _, id := range []string{"fig9", "sweep", "table4"} {
		if !strings.Contains(msg, id) {
			t.Fatalf("error %q does not list valid id %q", msg, id)
		}
	}
}

func TestRunRejectsUnknownIDBeforeRunningAnything(t *testing.T) {
	// The typo is last: resolution must fail before table4 runs (and
	// prints); run returns the lookup error either way, so assert on it.
	msg := errFrom(t, "run", "-profile", "tiny", "table4", "bogus")
	if !strings.Contains(msg, "unknown id") {
		t.Fatalf("unexpected error: %q", msg)
	}
}

func TestRunRejectsExplicitBadWorkers(t *testing.T) {
	for _, w := range []string{"0", "-3"} {
		msg := errFrom(t, "run", "-workers", w, "table4")
		if !strings.Contains(msg, "-workers") {
			t.Fatalf("error %q does not explain the -workers flag", msg)
		}
	}
}

func TestRunRejectsExplicitBadScenarios(t *testing.T) {
	msg := errFrom(t, "run", "-scenarios", "0", "sweep")
	if !strings.Contains(msg, "-scenarios") {
		t.Fatalf("error %q does not explain the -scenarios flag", msg)
	}
}

func TestRunRejectsSweepFlagsWithoutSweep(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-qtable-save", "x.gob", "table4"},
		{"run", "-qtable-load", "x.gob", "table4"},
		{"run", "-scenarios", "8", "table4"},
	} {
		msg := errFrom(t, args...)
		if !strings.Contains(msg, "only applies to the sweep") {
			t.Fatalf("args %v: error %q should explain the sweep-only flag", args, msg)
		}
	}
}

func TestRunRejectsUnknownLearnerListingValidNames(t *testing.T) {
	msg := errFrom(t, "run", "-learner", "sarsa", "fig9")
	for _, name := range []string{"-learner", "q", "double-q", "ucb1", "boltzmann"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not mention %q", msg, name)
		}
	}
}

func TestRunRejectsUnknownScheduleListingValidNames(t *testing.T) {
	msg := errFrom(t, "run", "-schedule", "cosine", "fig9")
	for _, name := range []string{"-schedule", "linear", "exp", "const"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not mention %q", msg, name)
		}
	}
}

func TestRunRejectsLearnerFlagsOnNonTrainingExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-learner", "double-q", "table4"},
		{"run", "-schedule", "exp", "table4", "fig2"},
	} {
		msg := errFrom(t, args...)
		if !strings.Contains(msg, "train an agent") {
			t.Fatalf("args %v: error %q should explain the training-only flags", args, msg)
		}
		if !strings.Contains(msg, "learners") {
			t.Fatalf("args %v: error %q should list the training experiments", args, msg)
		}
	}
}

func TestRunRejectsNoIDs(t *testing.T) {
	msg := errFrom(t, "run")
	if !strings.Contains(msg, "sweep") {
		t.Fatalf("error %q should list valid ids", msg)
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	msg := errFrom(t, "run", "-profile", "huge", "table4")
	if !strings.Contains(msg, "profile") {
		t.Fatalf("unexpected error: %q", msg)
	}
}

func TestRunTinyTable4Succeeds(t *testing.T) {
	if err := run([]string{"run", "-profile", "tiny", "table4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsProfilingWithParallelWorkers(t *testing.T) {
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		msg := errFrom(t, "run", flag, "/tmp/p.prof", "-workers", "2", "table4")
		if !strings.Contains(msg, "-workers 1") {
			t.Fatalf("%s: error %q should require -workers 1", flag, msg)
		}
	}
}

func TestRunProfilesWrittenOnCleanExit(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	heap := filepath.Join(dir, "heap.prof")
	if err := run([]string{"run", "-profile", "tiny", "-cpuprofile", cpu, "-memprofile", heap, "table4"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunRejectsResumeWithoutCacheDir(t *testing.T) {
	msg := errFrom(t, "run", "-resume", "sweep")
	if !strings.Contains(msg, "-cache-dir") {
		t.Fatalf("error %q should require -cache-dir", msg)
	}
}

func TestRunRejectsResumeOnNonCheckpointedExperiments(t *testing.T) {
	msg := errFrom(t, "run", "-resume", "-cache-dir", t.TempDir(), "table4")
	if !strings.Contains(msg, "checkpointed") || !strings.Contains(msg, "sweep") {
		t.Fatalf("error %q should list the checkpointed experiments", msg)
	}
}

func TestRunRejectsSharedWithoutCacheDir(t *testing.T) {
	msg := errFrom(t, "run", "-shared", "sweep")
	if !strings.Contains(msg, "-cache-dir") {
		t.Fatalf("error %q should require -cache-dir", msg)
	}
}

func TestRunRejectsSharedOnNonCheckpointedExperiments(t *testing.T) {
	msg := errFrom(t, "run", "-shared", "-cache-dir", t.TempDir(), "table4")
	if !strings.Contains(msg, "checkpointed") || !strings.Contains(msg, "sweep") {
		t.Fatalf("error %q should list the checkpointed experiments", msg)
	}
}

func TestRunRejectsLeaseFlagsWithoutShared(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-worker-id", "w1", "-cache-dir", os.TempDir(), "sweep"},
		{"run", "-lease-ttl", "5s", "-cache-dir", os.TempDir(), "sweep"},
	} {
		msg := errFrom(t, args...)
		if !strings.Contains(msg, "-shared") {
			t.Fatalf("error %q should point at -shared", msg)
		}
	}
}

func TestRunRejectsNegativeLeaseTTL(t *testing.T) {
	msg := errFrom(t, "run", "-shared", "-lease-ttl", "-5s", "-cache-dir", t.TempDir(), "sweep")
	if !strings.Contains(msg, "-lease-ttl") {
		t.Fatalf("error %q should explain the -lease-ttl flag", msg)
	}
}

// TestRunSharedSingleWorkerMatchesPlainRun: one -shared worker with
// nobody to share with is the degenerate fleet; its report must be
// byte-identical to the plain run and it must clean up its leases.
func TestRunSharedSingleWorkerMatchesPlainRun(t *testing.T) {
	// This test warms the in-memory run memo with tiny-sweep entries
	// that later store tests expect to simulate (and persist) cold.
	experiment.ResetRunCache()
	t.Cleanup(experiment.ResetRunCache)
	dir := t.TempDir()
	outPlain := filepath.Join(dir, "plain.txt")
	outShared := filepath.Join(dir, "shared.txt")
	if err := run([]string{"run", "-profile", "tiny", "-scenarios", "2", "-out", outPlain, "sweep"}); err != nil {
		t.Fatal(err)
	}
	cache := filepath.Join(dir, "cache")
	if err := run([]string{"run", "-profile", "tiny", "-scenarios", "2",
		"-shared", "-worker-id", "solo", "-cache-dir", cache, "-out", outShared, "sweep"}); err != nil {
		t.Fatal(err)
	}
	want := reportBody(t, outPlain)
	got := reportBody(t, outShared)
	if want != got {
		t.Fatalf("shared single-worker report differs from plain run:\n--- plain ---\n%s\n--- shared ---\n%s", want, got)
	}
	leases, _ := filepath.Glob(filepath.Join(cache, "leases", "*", "*.lease"))
	if len(leases) != 0 {
		t.Fatalf("leases left behind: %v", leases)
	}
}

// reportBody reads a report file with its wall-clock footer lines
// stripped (the only legitimately varying bytes).
func reportBody(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "completed in") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestRunRejectsCacheVerifyWithoutCacheDir(t *testing.T) {
	msg := errFrom(t, "run", "-cache-verify", "table4")
	if !strings.Contains(msg, "-cache-dir") {
		t.Fatalf("error %q should require -cache-dir", msg)
	}
}

func TestRunCacheVerifyWithoutIDsIsAnFsckOnlyRun(t *testing.T) {
	if err := run([]string{"run", "-cache-verify", "-cache-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCacheVerifyQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	args := []string{"run", "-profile", "tiny", "-scenarios", "2", "-cache-dir", dir, "sweep"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-v*.gob"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no persisted runs to corrupt (%v, err %v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	experiment.ResetRunCache()
	msg := errFrom(t, "run", "-cache-verify", "-cache-dir", dir)
	if !strings.Contains(msg, "quarantined") {
		t.Fatalf("fsck over a corrupted store returned %q, want a quarantine report", msg)
	}
	if _, err := os.Stat(files[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not renamed: %v", err)
	}
	// The store healed: a second pass is clean.
	experiment.ResetRunCache()
	if err := run([]string{"run", "-cache-verify", "-cache-dir", dir}); err != nil {
		t.Fatalf("second fsck after quarantine: %v", err)
	}
}

func TestRunResumeReplaysCheckpointedCells(t *testing.T) {
	dir := t.TempDir()
	out1 := filepath.Join(t.TempDir(), "first.txt")
	out2 := filepath.Join(t.TempDir(), "second.txt")
	base := []string{"run", "-profile", "tiny", "-scenarios", "2", "-cache-dir", dir}
	if err := run(append(base, "-out", out1, "sweep")); err != nil {
		t.Fatal(err)
	}
	if st := experiment.GetCheckpointStats(); st.Saved == 0 {
		t.Fatalf("first run saved no checkpoint cells: %+v", st)
	}
	experiment.ResetRunCache()
	experiment.ResetCheckpointStats()
	if err := run(append(base, "-resume", "-out", out2, "sweep")); err != nil {
		t.Fatal(err)
	}
	if st := experiment.GetCheckpointStats(); st.Replayed == 0 {
		t.Fatalf("resumed run replayed no cells: %+v", st)
	}
	first, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripTimings(string(second)), stripTimings(string(first)); got != want {
		t.Fatalf("resumed report differs from original:\n--- original ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// stripTimings drops the wall-clock completion lines, the only
// legitimately nondeterministic part of a rendered report.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "completed in") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestRunCacheDirPersistsAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	args := []string{"run", "-profile", "tiny", "-scenarios", "2", "-cache-dir", dir, "sweep"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-v*.gob"))
	if err != nil || len(files) == 0 {
		t.Fatalf("cache dir holds %v (err %v), want persisted runs", files, err)
	}
	experiment.ResetRunCache()
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if st := experiment.GetRunCacheStats(); st.DiskHits == 0 {
		t.Fatalf("second invocation over the cache dir hit nothing: %+v", st)
	}
}
