package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSecondSignalDuringDrainExitsPromptly pins the escape hatch: with
// the first-signal handler deliberately stuck (a drain blocked on
// in-flight cells), a second signal must still exit 130 immediately.
func TestSecondSignalDuringDrainExitsPromptly(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	drainStarted := make(chan struct{})
	watchSignalChan(context.Background(), sigs, func(code int) { exited <- code }, func(os.Signal) {
		close(drainStarted)
		select {} // drain that never finishes
	})

	sigs <- syscall.SIGTERM
	select {
	case <-drainStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not start the drain")
	}
	sigs <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not exit while the drain was blocked")
	}
}

// TestSignalWatcherExitsWhenRunCompletes: cancelling the scope before
// any signal arrives releases the watcher without calling exit.
func TestSignalWatcherExitsWhenRunCompletes(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, cancel := context.WithCancel(context.Background())
	watchSignalChan(ctx, sigs, func(code int) { exited <- code }, func(os.Signal) {
		t.Error("onFirst ran without a signal")
	})
	cancel()
	select {
	case code := <-exited:
		t.Fatalf("watcher exited (%d) without any signal", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestFirstSignalRunsHandlerOnce: one signal triggers exactly one
// graceful handler invocation and no hard exit.
func TestFirstSignalRunsHandlerOnce(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ran := make(chan os.Signal, 2)
	watchSignalChan(context.Background(), sigs, func(code int) { exited <- code }, func(s os.Signal) {
		ran <- s
	})
	sigs <- os.Interrupt
	select {
	case s := <-ran:
		if s != os.Interrupt {
			t.Fatalf("handler saw %v, want interrupt", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
	select {
	case code := <-exited:
		t.Fatalf("hard exit (%d) after a single signal", code)
	case <-time.After(50 * time.Millisecond):
	}
}
