// Command cohmeleon regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cohmeleon list
//	cohmeleon run [-profile quick|full|tiny] [-seed N] [-workers N] [-out FILE] <id>... | all
//
// Experiment IDs: table4, fig2, fig3, fig5, fig6, fig7, fig8, fig9,
// headline, overhead, ablation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cohmeleon/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cohmeleon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range experiment.List() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	profile := fs.String("profile", "quick", "experiment scale: quick, full or tiny")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	workers := fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential; reports are identical either way)")
	outPath := fs.String("out", "", "also append rendered reports to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment IDs (try 'cohmeleon list' or 'run all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiment.List() {
			ids = append(ids, e.ID)
		}
	}

	var opt experiment.Options
	switch *profile {
	case "quick":
		opt = experiment.Quick()
	case "full":
		opt = experiment.Default()
	case "tiny":
		opt = experiment.Tiny()
	default:
		return fmt.Errorf("run: unknown profile %q", *profile)
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *workers > 0 {
		opt.Workers = *workers
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	for _, id := range ids {
		entry, err := experiment.Lookup(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "### %s — %s (profile=%s, seed=%d)\n\n", entry.ID, entry.Title, *profile, opt.Seed)
		start := time.Now()
		rep, err := entry.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out, rep.Render())
		fmt.Fprintf(out, "(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `cohmeleon — reproduce the MICRO 2021 Cohmeleon evaluation

commands:
  list                      list the reproducible tables and figures
  run [flags] <id>...|all   regenerate artifacts

run flags:
  -profile quick|full|tiny  protocol scale (default quick)
  -workers N                concurrent trials (0 = GOMAXPROCS, 1 = sequential)
  -seed N                   override the experiment seed
  -out FILE                 append rendered reports to FILE
`)
}
