// Command cohmeleon regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cohmeleon list
//	cohmeleon run [-profile quick|full|tiny] [-seed N] [-workers N]
//	              [-scenarios N] [-qtable-save FILE] [-qtable-load FILE]
//	              [-learner NAME] [-schedule NAME] [-protocol NAME]
//	              [-finegrain] [-fidelity MODE] [-cache-dir DIR]
//	              [-resume] [-cache-verify]
//	              [-shared] [-worker-id NAME] [-lease-ttl D]
//	              [-cpuprofile FILE] [-memprofile FILE]
//	              [-out FILE] <id>... | all
//	cohmeleon serve -cache-dir DIR [-addr HOST:PORT] [-queue N] [-jobs N]
//	              [-cells N] [-workers N] [-cell-retries N]
//	              [-job-timeout D]
//
// Experiment IDs: table4, fig2, fig3, fig5, fig6, fig7, fig8, fig9,
// headline, overhead, ablation, sweep, learners.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cohmeleon/internal/experiment"
	"cohmeleon/internal/learn"
	"cohmeleon/internal/soc/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cohmeleon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range experiment.List() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "serve":
		return serveExperiments(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	profile := fs.String("profile", "quick", "experiment scale: quick, full or tiny")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	workers := fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential; reports are identical either way)")
	scenarios := fs.Int("scenarios", 0, "sweep scenario count (0 keeps the profile default)")
	qtableSave := fs.String("qtable-save", "", "sweep: write the merged trained Q-table to this file")
	qtableLoad := fs.String("qtable-load", "", "sweep: evaluate this Q-table frozen on the sampled scenarios")
	learner := fs.String("learner", "", "agent algorithm for training experiments (omit for the paper's \"q\")")
	schedule := fs.String("schedule", "", "agent ε/α schedule for training experiments (omit for the paper's \"linear\")")
	proto := fs.String("protocol", "", "coherence-protocol stack for every simulated SoC (omit for the default \"mesi\")")
	fineGrain := fs.Bool("finegrain", false, "widen the agent's action space with per-region (hot, cold) mode splits")
	fidelity := fs.String("fidelity", "", "sweep/learners cell fidelity: full (default; cycle-accurate), screening (calibrated analytical model), auto (screen, escalate ambiguous cells)")
	cacheDir := fs.String("cache-dir", "", "persist content-keyed static-policy run results under this directory (reports are byte-identical with or without it)")
	resume := fs.Bool("resume", false, "sweep/learners: replay cells checkpointed under -cache-dir by an interrupted identical run")
	shared := fs.Bool("shared", false, "sweep/learners: shard grid cells with other -shared processes on the same -cache-dir via lease files")
	workerID := fs.String("worker-id", "", "shared mode: this worker's name in lease files (default <hostname>-<pid>)")
	leaseTTL := fs.Duration("lease-ttl", 0, "shared mode: reclaim a peer's cell after its lease heartbeat stalls this long (default 10s)")
	cacheVerify := fs.Bool("cache-verify", false, "fsck -cache-dir before running: re-hash every entry, quarantine corrupt ones")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file on clean exit (forces -workers 1)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on clean exit (forces -workers 1)")
	outPath := fs.String("out", "", "also append rendered reports to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Learner-stack names resolve against the learn registry before
	// anything runs; the registry's error already lists every valid
	// option, like unknown experiment IDs do.
	if _, err := learn.NewAlgorithm(*learner); err != nil {
		return fmt.Errorf("run: -learner: %w", err)
	}
	if _, err := learn.NewSchedule(*schedule, learn.ScheduleParams{Epsilon0: 0.5, Alpha0: 0.25, DecayIterations: 1}); err != nil {
		return fmt.Errorf("run: -schedule: %w", err)
	}
	// Protocol names resolve against the protocol registry the same way;
	// the error lists every registered stack.
	if _, err := protocol.Lookup(*proto); err != nil {
		return fmt.Errorf("run: -protocol: %w", err)
	}
	// Flag defaults mean "use the profile's value"; an explicitly passed
	// zero or negative is a user error, not a request for the default,
	// and must fail loudly rather than being silently replaced.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		switch {
		case f.Name == "workers" && *workers <= 0:
			flagErr = fmt.Errorf("run: -workers %d invalid: need ≥ 1 (omit the flag for GOMAXPROCS)", *workers)
		case f.Name == "scenarios" && *scenarios <= 0:
			flagErr = fmt.Errorf("run: -scenarios %d invalid: need ≥ 1 (omit the flag for the profile default)", *scenarios)
		}
	})
	if flagErr != nil {
		return flagErr
	}
	// Profiling runs must be sequential: a multi-worker profile
	// interleaves independent trials and attributes their costs to one
	// confounded timeline. An explicit -workers > 1 is rejected rather
	// than silently overridden; omitting -workers profiles sequentially.
	profiling := *cpuprofile != "" || *memprofile != ""
	if profiling {
		if *workers > 1 {
			return fmt.Errorf("run: -cpuprofile/-memprofile need -workers 1 (a %d-worker profile interleaves unrelated trials); omit -workers to profile sequentially", *workers)
		}
		*workers = 1
	}
	// Crash-safety flags depend on a cache directory; reject the
	// combination upfront rather than running without the persistence the
	// user asked for.
	if *resume && *cacheDir == "" {
		return fmt.Errorf("run: -resume needs -cache-dir (checkpoints live under it)")
	}
	if *cacheVerify && *cacheDir == "" {
		return fmt.Errorf("run: -cache-verify needs -cache-dir")
	}
	if *shared && *cacheDir == "" {
		return fmt.Errorf("run: -shared needs -cache-dir (workers coordinate through lease files under it)")
	}
	// Lease tuning without shared mode would be silently inert.
	if !*shared {
		switch {
		case *workerID != "":
			return fmt.Errorf("run: -worker-id only applies with -shared")
		case *leaseTTL != 0:
			return fmt.Errorf("run: -lease-ttl only applies with -shared")
		}
	}
	if *leaseTTL < 0 {
		return fmt.Errorf("run: -lease-ttl %v invalid: need > 0 (omit the flag for the 10s default)", *leaseTTL)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		// A bare fsck run is a legitimate zero-experiment invocation.
		if *cacheVerify {
			return verifyCache(*cacheDir)
		}
		return fmt.Errorf("run: no experiment IDs (valid: %s, or 'all')", strings.Join(experiment.IDs(), ", "))
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiment.IDs()
	}
	// Resolve every ID before running anything: a typo at the end of the
	// list must not surface only after the preceding experiments ran.
	entries := make([]experiment.Entry, len(ids))
	hasSweep, hasGrid, trainsAgent, checkpoints := false, false, false, false
	for i, id := range ids {
		entry, err := experiment.Lookup(id)
		if err != nil {
			return err
		}
		entries[i] = entry
		hasSweep = hasSweep || id == "sweep"
		hasGrid = hasGrid || id == "sweep" || id == "learners"
		trainsAgent = trainsAgent || trainingExperiments[id]
		checkpoints = checkpoints || checkpointedExperiments[id]
	}
	// -fidelity selects the sweep/learners evaluation path; on any other
	// experiment it would be silently inert, so it fails loudly like the
	// other ineffective flags.
	if *fidelity != "" && !hasGrid {
		return fmt.Errorf("run: -fidelity only applies to the sweep and learners experiments (ids: %s)", strings.Join(ids, ", "))
	}
	// -resume on a run with no checkpointed experiment would be a silent
	// no-op; fail loudly like the other ineffective-flag cases.
	if *resume && !checkpoints {
		return fmt.Errorf("run: -resume only applies to checkpointed experiments (%s); ids: %s",
			strings.Join(checkpointedIDs(), ", "), strings.Join(ids, ", "))
	}
	// -shared shards the checkpointed grids; on anything else it would
	// silently run single-process.
	if *shared && !checkpoints {
		return fmt.Errorf("run: -shared only applies to checkpointed experiments (%s); ids: %s",
			strings.Join(checkpointedIDs(), ", "), strings.Join(ids, ", "))
	}
	// Sweep-only flags on a sweep-less run would be silently ignored —
	// in the save case leaving the user without the table they asked
	// for — so they fail loudly like every other ineffective flag.
	if !hasSweep {
		switch {
		case *qtableSave != "":
			return fmt.Errorf("run: -qtable-save only applies to the sweep experiment (ids: %s)", strings.Join(ids, ", "))
		case *qtableLoad != "":
			return fmt.Errorf("run: -qtable-load only applies to the sweep experiment (ids: %s)", strings.Join(ids, ", "))
		case *scenarios > 0:
			return fmt.Errorf("run: -scenarios only applies to the sweep experiment (ids: %s)", strings.Join(ids, ", "))
		}
	}
	// A learner-stack override on experiments that never train an agent
	// would be silently ignored; fail loudly like the sweep-only flags.
	if !trainsAgent && (*learner != "" || *schedule != "") {
		return fmt.Errorf("run: -learner/-schedule only apply to experiments that train an agent (%s); ids: %s",
			strings.Join(trainingIDs(), ", "), strings.Join(ids, ", "))
	}
	// -finegrain widens the trained agent's action space; on a run that
	// never trains an agent it would be silently inert.
	if !trainsAgent && *fineGrain {
		return fmt.Errorf("run: -finegrain only applies to experiments that train an agent (%s); ids: %s",
			strings.Join(trainingIDs(), ", "), strings.Join(ids, ", "))
	}

	var opt experiment.Options
	switch *profile {
	case "quick":
		opt = experiment.Quick()
	case "full":
		opt = experiment.Default()
	case "tiny":
		opt = experiment.Tiny()
	default:
		return fmt.Errorf("run: unknown profile %q", *profile)
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	if *scenarios > 0 {
		opt.SweepScenarios = *scenarios
	}
	opt.QTableSave = *qtableSave
	opt.QTableLoad = *qtableLoad
	opt.Learner = *learner
	opt.Schedule = *schedule
	opt.Protocol = *proto
	opt.FineGrain = *fineGrain
	opt.Fidelity = *fidelity
	opt.Resume = *resume
	opt.Shared = *shared
	opt.WorkerID = *workerID
	opt.LeaseTTL = *leaseTTL
	if err := opt.Validate(); err != nil {
		return err
	}
	if err := experiment.SetRunCacheDir(*cacheDir); err != nil {
		return err
	}
	if *cacheVerify {
		if err := verifyCache(*cacheDir); err != nil {
			return err
		}
	}

	// First SIGINT/SIGTERM cancels the experiment context: dispatch stops,
	// in-flight app runs complete, checkpoints and the run store stay
	// sound, and the process exits through the normal error path with a
	// resume hint. A second signal exits hard for when graceful isn't
	// happening fast enough.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := watchSignals(ctx, func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "cohmeleon: %v: finishing in-flight runs, checkpointing (again to exit now)\n", sig)
		cancel()
	})
	defer stop()
	opt.Ctx = ctx
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("run: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("run: -cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	prevCache := experiment.GetRunCacheStats()
	prevCkpt := experiment.GetCheckpointStats()
	prevLease := experiment.GetLeaseStats()
	for _, entry := range entries {
		fmt.Fprintf(out, "### %s — %s (profile=%s, seed=%d)\n\n", entry.ID, entry.Title, *profile, opt.Seed)
		start := time.Now()
		rep, err := entry.Run(opt)
		if err != nil {
			if errors.Is(err, context.Canceled) && *cacheDir != "" && checkpointedExperiments[entry.ID] {
				fmt.Fprintf(os.Stderr, "cohmeleon: %s: interrupted; completed cells are checkpointed — rerun with -resume and the same flags to continue\n", entry.ID)
			}
			return fmt.Errorf("%s: %w", entry.ID, err)
		}
		fmt.Fprintln(out, rep.Render())
		fmt.Fprintf(out, "(%s completed in %s)\n\n", entry.ID, time.Since(start).Round(time.Millisecond))
		// Duplicate-run elimination and checkpoint traffic are reported on
		// stderr so the rendered artifact stays byte-identical whether the
		// cache is cold, warm, resumed, or disabled.
		cur := experiment.GetRunCacheStats()
		if cur != prevCache {
			fmt.Fprintf(os.Stderr, "cohmeleon: %s: run cache: %d memo hits, %d disk hits, %d simulated\n",
				entry.ID, cur.Hits-prevCache.Hits, cur.DiskHits-prevCache.DiskHits, cur.Misses-prevCache.Misses)
		}
		prevCache = cur
		ck := experiment.GetCheckpointStats()
		if ck != prevCkpt {
			fmt.Fprintf(os.Stderr, "cohmeleon: %s: checkpoints: %d cells replayed, %d cells saved\n",
				entry.ID, ck.Replayed-prevCkpt.Replayed, ck.Saved-prevCkpt.Saved)
		}
		prevCkpt = ck
		ls := experiment.GetLeaseStats()
		if ls != prevLease {
			fmt.Fprintf(os.Stderr, "cohmeleon: %s: leases: %d acquired, %d renewed, %d contended, %d expired, %d reclaimed, %d lost, %d fallbacks\n",
				entry.ID, ls.Acquired-prevLease.Acquired, ls.Renewed-prevLease.Renewed,
				ls.Contended-prevLease.Contended, ls.Expired-prevLease.Expired,
				ls.Reclaimed-prevLease.Reclaimed, ls.Lost-prevLease.Lost, ls.Fallbacks-prevLease.Fallbacks)
		}
		prevLease = ls
	}
	// Degraded-store traffic (counted in memo.go, warned once there) gets
	// a final tally so a run that limped through write failures says so.
	if st := experiment.GetRunCacheStats(); st.WriteFailures+st.ReadFailures+st.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "cohmeleon: run store degraded: %d write failures, %d read failures, %d quarantined\n",
			st.WriteFailures, st.ReadFailures, st.Quarantined)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("run: -memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("run: -memprofile: %w", err)
		}
	}
	return nil
}

// verifyCache fscks the run store: every entry and checkpoint cell is
// re-read, re-hashed, and fully decoded; failures are quarantined. A
// pass that had to quarantine is an error — the store healed, but the
// user asked to know.
func verifyCache(dir string) error {
	if err := experiment.SetRunCacheDir(dir); err != nil {
		return err
	}
	res, err := experiment.VerifyRunCache(dir)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "cohmeleon: cache-verify:", res)
	if !res.Clean() {
		return fmt.Errorf("cache-verify: %d corrupt entries quarantined (renamed *.corrupt; they will be recomputed), %d corrupt but not quarantined (still in place)", res.Quarantined, res.Failed)
	}
	return nil
}

// checkpointedExperiments lists the experiments that persist per-cell
// checkpoints under -cache-dir and therefore support -resume.
var checkpointedExperiments = map[string]bool{
	"sweep": true, "learners": true,
}

// checkpointedIDs returns the checkpointed experiments in registry order.
func checkpointedIDs() []string {
	var out []string
	for _, id := range experiment.IDs() {
		if checkpointedExperiments[id] {
			out = append(out, id)
		}
	}
	return out
}

// trainingExperiments lists the experiments whose Cohmeleon agent is
// built from the options' learner stack: -learner/-schedule change
// their behavior and are rejected elsewhere. (The ablation deliberately
// pins the paper's default stack — its variants are defined relative to
// it — and the overhead sweep charges a stack-independent constant.)
var trainingExperiments = map[string]bool{
	"fig5": true, "fig6": true, "fig7": true, "fig8": true, "fig9": true,
	"headline": true, "sweep": true, "learners": true,
}

// trainingIDs returns the training experiments sorted like the registry.
func trainingIDs() []string {
	var out []string
	for _, id := range experiment.IDs() {
		if trainingExperiments[id] {
			out = append(out, id)
		}
	}
	return out
}

func usage() {
	fmt.Fprint(os.Stderr, `cohmeleon — reproduce the MICRO 2021 Cohmeleon evaluation

commands:
  list                      list the reproducible tables and figures
  run [flags] <id>...|all   regenerate artifacts
  serve [flags]             HTTP job server for sweep/learners runs

run flags:
  -profile quick|full|tiny  protocol scale (default quick)
  -workers N                concurrent trials (omit for GOMAXPROCS, 1 = sequential)
  -seed N                   override the experiment seed
  -scenarios N              sweep scenario count (omit for the profile default)
  -qtable-save FILE         sweep: save the merged trained Q-table
  -qtable-load FILE         sweep: evaluate a saved Q-table on fresh scenarios
  -learner NAME             agent algorithm: q, double-q, ucb1, boltzmann
  -schedule NAME            agent ε/α schedule: linear, exp, const
  -protocol NAME            coherence-protocol stack: mesi, eci (default mesi)
  -finegrain                let the agent split hot/cold buffer regions
                            across two coherence modes per invocation
  -fidelity MODE            sweep/learners cell fidelity: full (default,
                            cycle-accurate), screening (every cell estimated by
                            the calibrated analytical cost model; reports carry
                            the model's held-out error bounds), auto (screen,
                            then re-simulate only cells whose estimates are too
                            close to call at the model's demonstrated accuracy)
  -cache-dir DIR            persist static-policy run results (content-keyed);
                            repeated regeneration skips those simulations, and
                            reports stay byte-identical either way
  -resume                   sweep/learners: replay cells checkpointed by an
                            interrupted identical run (needs -cache-dir); the
                            resumed report is byte-identical to an
                            uninterrupted one
  -cache-verify             fsck -cache-dir first: re-hash every entry,
                            checkpoint cell, and lease file, quarantine corrupt
                            ones as *.corrupt, and sweep orphaned temp files
                            (usable with no experiment IDs)
  -shared                   sweep/learners: shard grid cells with any number of
                            other -shared processes pointed at the same
                            -cache-dir, coordinated via lease files; every
                            worker that finishes renders the full report,
                            byte-identical to a single-process run
  -worker-id NAME           shared mode: name written into this worker's
                            leases (default <hostname>-<pid>)
  -lease-ttl D              shared mode: reclaim a dead peer's cell after its
                            lease heartbeat stalls this long, e.g. 30s
                            (default 10s)
  -cpuprofile FILE          write a pprof CPU profile on clean exit
  -memprofile FILE          write a pprof heap profile on clean exit
                            (profiling forces -workers 1; explicit -workers > 1
                            is rejected — a parallel profile confounds trials)
  -out FILE                 append rendered reports to FILE

Q-table transfer workflow (train on A, test on disjoint B):
  cohmeleon run -seed 1 -qtable-save table.gob sweep
  cohmeleon run -seed 2 -qtable-load table.gob sweep

Learner comparison (algorithm × schedule grid over random scenarios):
  cohmeleon run learners
  cohmeleon run -learner double-q -schedule exp fig9

Interrupted runs (Ctrl-C once = graceful: in-flight runs finish and
checkpoint; twice = exit now):
  cohmeleon run -cache-dir cache sweep         # interrupted at cell k
  cohmeleon run -cache-dir cache -resume sweep # replays cells, identical report

Distributed sweeps (N processes, one store; see README for the lease
protocol and operator runbook):
  cohmeleon run -shared -cache-dir /shared/cache -scenarios 1024 sweep &
  cohmeleon run -shared -cache-dir /shared/cache -scenarios 1024 sweep &
  wait   # each worker prints the same byte-identical report

Serve mode (HTTP job server; jobs are sweep/learners specs and their
reports are byte-identical to the equivalent 'run' invocation):
  cohmeleon serve -cache-dir cache -addr 127.0.0.1:8344
  curl -X POST localhost:8344/jobs -d '{"experiment":"sweep","profile":"tiny"}'

serve flags:
  -addr HOST:PORT           listen address (default 127.0.0.1:8344)
  -cache-dir DIR            required: cross-job dedup, checkpoints, and
                            crash-resumable job manifests live under it
  -queue N                  queued-job bound before 429 (default 16)
  -jobs N                   concurrent jobs (default 2)
  -cells N                  in-flight cell budget across all jobs
                            (default GOMAXPROCS)
  -workers N                per-job fan-out width (default GOMAXPROCS)
  -cell-retries N           attempts per transiently-failing cell (default 3)
  -job-timeout D            default per-job deadline, e.g. 30m (default none)
`)
}
