package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Two-stage shutdown, shared by batch runs and the serve drain: the
// first SIGINT/SIGTERM starts a graceful wind-down (cancel the
// experiment context, or drain the job server), a second signal exits
// hard with status 130 for when graceful isn't happening fast enough.
//
// onFirst runs on its own goroutine — a drain that blocks on in-flight
// cells must never delay the second-signal escape hatch — and the
// watcher keeps listening the whole time, so the second signal is
// honored even while onFirst is still winding down.

// watchSignals installs the shutdown protocol on the real process
// signals. ctx scopes the watcher: when it is cancelled before any
// signal arrived (the run completed), the watcher goroutine exits. The
// returned stop function unregisters the signal handler.
func watchSignals(ctx context.Context, onFirst func(os.Signal)) func() {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	watchSignalChan(ctx, sigs, os.Exit, onFirst)
	return func() { signal.Stop(sigs) }
}

// watchSignalChan is the testable core: the signal source and the exit
// function are injected, so a test can feed synthetic signals and
// assert the hard-exit path fires promptly while onFirst is blocked.
func watchSignalChan(ctx context.Context, sigs <-chan os.Signal, exit func(int), onFirst func(os.Signal)) {
	go func() {
		var sig os.Signal
		select {
		case sig = <-sigs:
		case <-ctx.Done():
			return
		}
		go onFirst(sig)
		<-sigs
		fmt.Fprintln(os.Stderr, "cohmeleon: second signal, exiting immediately")
		exit(130)
	}()
}
