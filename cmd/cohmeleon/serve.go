package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"cohmeleon/internal/experiment"
	"cohmeleon/internal/server"
)

// batchOnlyServeFlags are `run` flags a serve invocation must reject
// with an explanation, not a bare "flag provided but not defined":
// each maps to why it has no serve equivalent (or where the equivalent
// lives).
var batchOnlyServeFlags = map[string]string{
	"resume":      "serve jobs always resume from the cells checkpointed under -cache-dir",
	"qtable-save": "Q-table transfer is a batch 'run' workflow",
	"qtable-load": "Q-table transfer is a batch 'run' workflow",
	"profile":     "the job spec's \"profile\" field scales each job",
	"seed":        "the job spec's \"seed\" field sets each job's seed",
	"scenarios":   "the job spec's \"scenarios\" field sizes each sweep job",
	"learner":     "the job spec's \"learner\" field picks each job's algorithm",
	"schedule":    "the job spec's \"schedule\" field picks each job's schedule",
	"cpuprofile":  "profiling a multi-job server confounds unrelated timelines; profile a batch run instead",
	"memprofile":  "profiling a multi-job server confounds unrelated timelines; profile a batch run instead",
	"out":         "reports are served per job at GET /jobs/{id}/report",
	"worker-id":   "serve derives its lease worker id from host+pid",
	"lease-ttl":   "serve uses the default lease TTL; shard tuning is a batch 'run' concern",
}

// rejectBatchOnlyFlags scans raw args (before flag parsing) for batch
// flags so the error can explain the serve-mode alternative.
func rejectBatchOnlyFlags(args []string) error {
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			continue
		}
		name := strings.TrimLeft(a, "-")
		if i := strings.IndexByte(name, '='); i >= 0 {
			name = name[:i]
		}
		if why, ok := batchOnlyServeFlags[name]; ok {
			return fmt.Errorf("serve: -%s is a batch 'run' flag: %s", name, why)
		}
	}
	return nil
}

// serveExperiments runs the HTTP job server until SIGINT/SIGTERM
// drains it (second signal exits immediately, like batch runs).
func serveExperiments(args []string) error {
	if err := rejectBatchOnlyFlags(args); err != nil {
		return err
	}
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address")
	cacheDir := fs.String("cache-dir", "", "run-store directory jobs share (required: dedup, checkpoints, and job manifests live under it)")
	queueCap := fs.Int("queue", 16, "max queued jobs before submissions get 429")
	jobWorkers := fs.Int("jobs", 2, "jobs running concurrently")
	cellBudget := fs.Int("cells", 0, "grid cells in flight across all jobs (0 = GOMAXPROCS)")
	cellWorkers := fs.Int("workers", 0, "per-job concurrent trials (0 = GOMAXPROCS; still capped by -cells)")
	cellRetries := fs.Int("cell-retries", 3, "max attempts per cell on transient failures (1 = no retry)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job deadline (0 = none; job specs may set their own)")
	shared := fs.Bool("shared", false, "shard every job's grid cells with other -shared processes (serve or batch) on the same -cache-dir via lease files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v (jobs are submitted over HTTP, not the command line)", fs.Args())
	}
	if *cacheDir == "" {
		return fmt.Errorf("serve: -cache-dir required (cross-job dedup, cell checkpoints, and crash-resumable job manifests all live under it)")
	}
	switch {
	case *queueCap < 1:
		return fmt.Errorf("serve: -queue %d invalid: need ≥ 1", *queueCap)
	case *jobWorkers < 1:
		return fmt.Errorf("serve: -jobs %d invalid: need ≥ 1", *jobWorkers)
	case *cellBudget < 0:
		return fmt.Errorf("serve: -cells %d invalid: need ≥ 0 (0 = GOMAXPROCS)", *cellBudget)
	case *cellWorkers < 0:
		return fmt.Errorf("serve: -workers %d invalid: need ≥ 0 (0 = GOMAXPROCS)", *cellWorkers)
	case *cellRetries < 1:
		return fmt.Errorf("serve: -cell-retries %d invalid: need ≥ 1 (1 = no retry)", *cellRetries)
	case *jobTimeout < 0:
		return fmt.Errorf("serve: -job-timeout %v invalid: need ≥ 0 (0 = none)", *jobTimeout)
	}

	retry := experiment.DefaultRetryPolicy()
	retry.MaxAttempts = *cellRetries
	srv, err := server.New(server.Config{
		CacheDir:    *cacheDir,
		QueueCap:    *queueCap,
		JobWorkers:  *jobWorkers,
		CellBudget:  *cellBudget,
		CellWorkers: *cellWorkers,
		Retry:       retry,
		JobTimeout:  *jobTimeout,
		Shared:      *shared,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	srv.Start()
	fmt.Fprintf(os.Stderr, "cohmeleon: serving on http://%s (cache %s)\n", ln.Addr(), *cacheDir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drained := make(chan struct{})
	stop := watchSignals(ctx, func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "cohmeleon: %v: draining — finishing in-flight cells, checkpointing, persisting jobs (again to exit now)\n", sig)
		srv.Drain()
		shutdownCtx, done := context.WithTimeout(context.Background(), 10*time.Second)
		defer done()
		_ = hs.Shutdown(shutdownCtx)
		close(drained)
	})
	defer stop()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	<-drained
	fmt.Fprintln(os.Stderr, "cohmeleon: drained; queued and interrupted jobs resume on restart with the same -cache-dir")
	return nil
}
