package main

import (
	"strings"
	"testing"
)

// TestServeFlagValidation walks the serve flag surface: the required
// cache dir, the batch-only flags (each rejection must explain the
// serve-mode alternative), out-of-range limits (each must list the
// valid range), and positional arguments.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // all substrings must appear in the error
	}{
		{"missing cache dir", []string{}, []string{"-cache-dir required", "dedup", "manifests"}},
		{"positional args", []string{"-cache-dir", "d", "sweep"}, []string{"unexpected arguments", "HTTP"}},
		{"batch resume flag", []string{"-resume", "-cache-dir", "d"}, []string{"-resume", "batch 'run' flag", "always resume"}},
		{"batch profile flag", []string{"-profile=tiny"}, []string{"-profile", "batch 'run' flag", "job spec"}},
		{"batch seed flag", []string{"--seed", "7"}, []string{"-seed", "job spec"}},
		{"batch scenarios flag", []string{"-scenarios=4"}, []string{"-scenarios", "job spec"}},
		{"batch learner flag", []string{"-learner", "q"}, []string{"-learner", "job spec"}},
		{"batch schedule flag", []string{"-schedule", "s"}, []string{"-schedule", "job spec"}},
		{"batch out flag", []string{"-out", "r.md"}, []string{"-out", "/jobs/{id}/report"}},
		{"batch cpuprofile flag", []string{"-cpuprofile", "p"}, []string{"-cpuprofile", "batch run"}},
		{"batch qtable flag", []string{"-qtable-save", "q.gob"}, []string{"-qtable-save", "batch 'run' workflow"}},
		{"zero queue", []string{"-cache-dir", "d", "-queue", "0"}, []string{"-queue 0", "need ≥ 1"}},
		{"zero jobs", []string{"-cache-dir", "d", "-jobs", "0"}, []string{"-jobs 0", "need ≥ 1"}},
		{"negative cells", []string{"-cache-dir", "d", "-cells", "-1"}, []string{"-cells -1", "need ≥ 0", "GOMAXPROCS"}},
		{"negative workers", []string{"-cache-dir", "d", "-workers", "-1"}, []string{"-workers -1", "need ≥ 0"}},
		{"zero cell retries", []string{"-cache-dir", "d", "-cell-retries", "0"}, []string{"-cell-retries 0", "need ≥ 1", "no retry"}},
		{"negative job timeout", []string{"-cache-dir", "d", "-job-timeout", "-1s"}, []string{"-job-timeout", "need ≥ 0"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := errFrom(t, append([]string{"serve"}, c.args...)...)
			for _, w := range c.want {
				if !strings.Contains(msg, w) {
					t.Errorf("error %q missing %q", msg, w)
				}
			}
		})
	}
}

// TestServeBatchFlagRejectionBeatsParsing pins that the batch-only
// check runs before flag parsing, so the user gets the explanation
// rather than flag's "provided but not defined".
func TestServeBatchFlagRejectionBeatsParsing(t *testing.T) {
	msg := errFrom(t, "serve", "-resume")
	if strings.Contains(msg, "not defined") {
		t.Fatalf("got the bare flag-package error %q, want the explanatory rejection", msg)
	}
}
