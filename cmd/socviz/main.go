// Command socviz prints the floorplan of each evaluation SoC and,
// optionally, a monitor/utilization report after running its evaluation
// application under a chosen policy — a quick way to see where tiles
// sit and where the traffic goes.
//
// Usage:
//
//	socviz [-run] [-policy manual|rand|non-coh|llc-coh|coh-dma|full-coh] [soc...]
package main

import (
	"flag"
	"fmt"
	"os"

	"cohmeleon/internal/esp"
	"cohmeleon/internal/policy"
	"cohmeleon/internal/soc"
	"cohmeleon/internal/workload"
)

func main() {
	runApp := flag.Bool("run", false, "run the SoC's evaluation application and print monitor readings")
	polName := flag.String("policy", "manual", "policy for -run: manual, rand, non-coh, llc-coh, coh-dma, full-coh")
	seed := flag.Uint64("seed", 42, "seed for traffic generators and workloads")
	flag.Parse()

	configs := map[string]*soc.Config{}
	var order []string
	for _, cfg := range soc.Table4(*seed) {
		configs[cfg.Name] = cfg
		order = append(order, cfg.Name)
	}
	names := flag.Args()
	if len(names) == 0 {
		names = order
	}

	for _, name := range names {
		cfg, ok := configs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "socviz: unknown SoC %q (have %v)\n", name, order)
			os.Exit(1)
		}
		s, err := cfg.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "socviz:", err)
			os.Exit(1)
		}
		fmt.Println(s.Floorplan())
		if !*runApp {
			continue
		}
		pol, err := pickPolicy(*polName, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "socviz:", err)
			os.Exit(1)
		}
		app, err := workload.AppFor(cfg, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "socviz:", err)
			os.Exit(1)
		}
		if _, err := workload.Run(esp.NewSystem(s, pol), app, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "socviz:", err)
			os.Exit(1)
		}
		fmt.Println(s.UtilizationReport())
	}
}

func pickPolicy(name string, seed uint64) (esp.Policy, error) {
	switch name {
	case "manual":
		return policy.NewManual(), nil
	case "rand":
		return policy.NewRandom(seed), nil
	case "non-coh":
		return policy.NewFixed(soc.NonCohDMA), nil
	case "llc-coh":
		return policy.NewFixed(soc.LLCCohDMA), nil
	case "coh-dma":
		return policy.NewFixed(soc.CohDMA), nil
	case "full-coh":
		return policy.NewFixed(soc.FullyCoh), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
